// Package bench regenerates every table and figure of the paper's
// evaluation (§III): the process-persistence studies (Fig. 4, Tables III
// and IV), the SSP consistency-interval study (Fig. 5) and the HSCC
// migration studies (Table V, Fig. 6, Table VI), plus the configuration
// echoes (Tables I and II). Each experiment returns a structured result
// that renders as the paper's table/series and knows how to check the
// published *shape* (who wins, how factors trend).
package bench

import (
	"time"

	"kindle/internal/core"
	"kindle/internal/gemos"
	"kindle/internal/mem"
	"kindle/internal/persist"
	"kindle/internal/sim"
)

// tickEvery controls how often the micro-benchmarks poll the event queue
// (checkpoint timers) between page operations.
const tickEvery = 16

// seqAllocAccess is the Fig. 4a micro-benchmark: allocate `size` bytes of
// NVM with mmap(MAP_NVM) and sequentially access all pages in the
// allocated space.
func seqAllocAccess(f *core.Framework, p *gemos.Process, size uint64) error {
	k := f.K
	a, err := k.Mmap(p, 0, size, gemos.ProtRead|gemos.ProtWrite, gemos.MapNVM)
	if err != nil {
		return err
	}
	pages := size / mem.PageSize
	for i := uint64(0); i < pages; i++ {
		if _, err := f.M.Core.Access(a+i*mem.PageSize, true, 8); err != nil {
			return err
		}
		if i%tickEvery == 0 {
			k.Tick()
		}
	}
	k.Tick()
	return k.Munmap(p, a, size)
}

// strideAccess is the Fig. 4b micro-benchmark: a fixed number of 4 KB page
// allocations with a predefined gap in the virtual address space (1 GB,
// 2 MB or 4 KB) so different page-table levels are populated, followed by
// rounds of accesses to the allocated pages.
func strideAccess(f *core.Framework, p *gemos.Process, gap uint64, pages, rounds int) error {
	k := f.K
	base := uint64(16 << 30) // far from the default mmap region
	vas := make([]uint64, pages)
	for i := 0; i < pages; i++ {
		va := base + uint64(i)*gap
		got, err := k.Mmap(p, va, mem.PageSize, gemos.ProtRead|gemos.ProtWrite, gemos.MapNVM)
		if err != nil {
			return err
		}
		vas[i] = got
		if _, err := f.M.Core.Access(got, true, 8); err != nil {
			return err
		}
		k.Tick()
	}
	for r := 0; r < rounds; r++ {
		for _, va := range vas {
			if _, err := f.M.Core.Access(va, false, 8); err != nil {
				return err
			}
		}
		k.Tick()
	}
	for _, va := range vas {
		if err := k.Munmap(p, va, mem.PageSize); err != nil {
			return err
		}
		k.Tick()
	}
	return nil
}

// churn is the Table III micro-benchmark: allocate a 512 MB (total) NVM
// space and write all pages; then, twice, munmap a fixed-size chunk from
// the start and mmap it again; read the newly allocated chunks; finally
// unmap everything.
func churn(f *core.Framework, p *gemos.Process, total, chunk uint64) error {
	return churnRounds(f, p, total, chunk, 1)
}

// churnAccess is the Table IV variant: after each re-allocation, all pages
// in the area are accessed for multiple rounds to cause TLB misses.
func churnAccess(f *core.Framework, p *gemos.Process, total, chunk uint64, rounds int) error {
	return churnRounds(f, p, total, chunk, rounds)
}

func churnRounds(f *core.Framework, p *gemos.Process, total, chunk uint64, accessRounds int) error {
	k := f.K
	a, err := k.Mmap(p, 0, total, gemos.ProtRead|gemos.ProtWrite, gemos.MapNVM)
	if err != nil {
		return err
	}
	touch := func(base, size uint64, write bool) error {
		pages := size / mem.PageSize
		for i := uint64(0); i < pages; i++ {
			if _, err := f.M.Core.Access(base+i*mem.PageSize, write, 8); err != nil {
				return err
			}
			if i%tickEvery == 0 {
				k.Tick()
			}
		}
		k.Tick()
		return nil
	}
	// Populate the whole area.
	if err := touch(a, total, true); err != nil {
		return err
	}
	// Two munmap/mmap rounds on the fixed-size chunk at the start.
	for round := 0; round < 2; round++ {
		if err := k.Munmap(p, a, chunk); err != nil {
			return err
		}
		k.Tick()
		if _, err := k.Mmap(p, a, chunk, gemos.ProtRead|gemos.ProtWrite, gemos.MapNVM); err != nil {
			return err
		}
		k.Tick()
		// Read the re-allocated chunk (faults fresh frames in), then the
		// configured number of full-area access rounds.
		if err := touch(a, chunk, false); err != nil {
			return err
		}
		for r := 1; r < accessRounds; r++ {
			if err := touch(a, total, false); err != nil {
				return err
			}
		}
	}
	return k.Munmap(p, a, total)
}

// calibrateStrideRounds measures the steady-state access cost of the
// stride micro-benchmark on a plain machine and returns the round count
// that makes the run span ~2.2 checkpoint intervals.
func calibrateStrideRounds(pages int, interval time.Duration) int {
	f := core.NewDefault()
	p, err := f.K.Spawn("calibrate")
	if err != nil {
		return 100000
	}
	f.K.Switch(p)
	base := uint64(16 << 30)
	vas := make([]uint64, pages)
	for i := 0; i < pages; i++ {
		va, err := f.K.Mmap(p, base+uint64(i)*mem.PageSize, mem.PageSize, gemos.ProtRead|gemos.ProtWrite, gemos.MapNVM)
		if err != nil {
			return 100000
		}
		vas[i] = va
		f.M.Core.Access(va, true, 8)
	}
	const probe = 2000
	start := f.M.Clock.Now()
	for r := 0; r < probe; r++ {
		for _, va := range vas {
			f.M.Core.Access(va, false, 8)
		}
	}
	perRound := float64(f.M.Clock.Now()-start) / probe
	target := 2.2 * float64(sim.FromDuration(interval))
	rounds := int(target / perRound)
	if rounds < 100 {
		rounds = 100
	}
	return rounds
}

// newPersistenceRun boots a full-size framework with persistence enabled
// and an empty process ready to run a micro-benchmark.
func newPersistenceRun(scheme persist.Scheme, interval time.Duration) (*core.Framework, *gemos.Process, error) {
	f := core.NewDefault()
	if _, err := f.EnablePersistence(scheme, interval); err != nil {
		return nil, nil, err
	}
	p, err := f.K.Spawn("micro")
	if err != nil {
		return nil, nil, err
	}
	f.K.Switch(p)
	f.Manager().Start()
	return f, p, nil
}
