package bench

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

// quickLongHorizon keeps the lifecycle cheap for unit tests: fewer, shorter
// phases at a coarser stepped grain, with a crash in the middle.
func quickLongHorizon(event bool) LongHorizonConfig {
	return LongHorizonConfig{
		EventDriven:  event,
		Phases:       4,
		OpsPerPhase:  16,
		IdlePerPhase: 4 * time.Millisecond,
		IdleTick:     2 * time.Microsecond,
		Interval:     500 * time.Microsecond,
		CrashAtPhase: 2,
	}
}

// TestLongHorizonEventClockIdentity is the lifecycle half of the event-clock
// identity gate: a checkpoint/crash/recovery lifecycle with long idle
// windows must produce byte-identical stats dumps and equal final clocks
// whether the clock steps every cycle group or jumps event-to-event.
func TestLongHorizonEventClockIdentity(t *testing.T) {
	stepped, err := RunLongHorizon(quickLongHorizon(false))
	if err != nil {
		t.Fatal(err)
	}
	event, err := RunLongHorizon(quickLongHorizon(true))
	if err != nil {
		t.Fatal(err)
	}
	if stepped.Crashes != 1 || event.Crashes != 1 {
		t.Fatalf("crashes = %d/%d, want 1/1", stepped.Crashes, event.Crashes)
	}
	// 4 phases x 4ms idle at a 500us interval: the timer must have fired
	// roughly once per interval; a run where no checkpoints happened would
	// vacuously pass the identity check.
	if stepped.Checkpoints < 10 {
		t.Fatalf("only %d checkpoints started; lifecycle not exercising the timer", stepped.Checkpoints)
	}
	if stepped.Cycles != event.Cycles {
		t.Fatalf("final clocks differ: stepped %d, event-driven %d", stepped.Cycles, event.Cycles)
	}
	if !bytes.Equal(stepped.Dump, event.Dump) {
		t.Fatalf("stats dumps differ:\n%s", firstDumpDiff(stepped.Dump, event.Dump))
	}
}

// firstDumpDiff renders the first diverging line of two stats dumps.
func firstDumpDiff(a, b []byte) string {
	al := bytes.Split(a, []byte("\n"))
	bl := bytes.Split(b, []byte("\n"))
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(al[i], bl[i]) {
			return fmt.Sprintf("line %d:\n  stepped: %s\n  event:   %s", i+1, al[i], bl[i])
		}
	}
	return "dumps differ in length only"
}
