package bench

import (
	"fmt"
	"strings"
	"time"

	"kindle/internal/mem"
	"kindle/internal/persist"
)

// Options tunes experiment scale. Scale 1.0 reproduces the paper's
// parameters; smaller values shrink footprints/op counts proportionally
// (minimum sizes keep the mechanisms exercised) for quick runs and tests.
type Options struct {
	Scale float64

	// Parallel bounds the worker pool that independent simulation runs
	// fan out over (RunAll's experiments and each experiment's internal
	// grid). Zero or negative means GOMAXPROCS. Each run owns its whole
	// machine (clock, stats, RNG), so parallelism cannot perturb
	// simulated timing: results are byte-identical to a sequential run.
	Parallel int

	// Progress, when non-nil, receives live progress as the run executes:
	// experiment start/finish, grid-task completions (with labels and
	// durations, the ETA basis) and replayed-record counts. Purely
	// observational — attaching it never changes scheduling or results.
	Progress *Tracker

	// WarmFork boots each persistence-grid cell by forking a shared
	// copy-on-write snapshot of the (scheme, interval) boot prefix instead
	// of re-simulating it. Results are byte-identical either way (pinned by
	// TestGridWarmForkIdentity); the fork only removes redundant host work.
	WarmFork bool

	// Shards > 0 routes replay-bearing cells that only need total simulated
	// execution time (the NVM-technology extension) through the sharded
	// replay engine at that shard count. Sharded times use cold segment
	// boundaries, so they are only comparable to other sharded runs — keep
	// Shards fixed when diffing reports (kindle-benchdiff refuses mixed
	// shard counts without -normalize-env).
	Shards int

	// warm is the shared snapshot cache WarmFork cells fork from; attached
	// by warmed() so closures capturing Options share one cache.
	warm *warmCache
}

func (o Options) scale() float64 {
	if o.Scale <= 0 {
		return 1.0
	}
	return o.Scale
}

// scaleBytes scales a byte size down, keeping page alignment and a 64 KiB
// floor.
func (o Options) scaleBytes(v uint64) uint64 {
	s := uint64(float64(v) * o.scale())
	s &^= mem.PageSize - 1
	if s < 64*1024 {
		s = 64 * 1024
	}
	return s
}

// scaleInterval scales a checkpoint interval with the footprint so reduced
// runs keep the same ratio of work per interval (floor 50 µs).
func (o Options) scaleInterval(v time.Duration) time.Duration {
	s := time.Duration(float64(v) * o.scale())
	if s < 50*time.Microsecond {
		s = 50 * time.Microsecond
	}
	return s
}

// ckptInterval is the fixed checkpoint period of Fig. 4 (10 ms, chosen per
// Aurora).
const ckptInterval = 10 * time.Millisecond

// Fig4aRow is one allocation-size point of Fig. 4a.
type Fig4aRow struct {
	SizeMB       int
	PersistentMs float64
	RebuildMs    float64
}

// Fig4aResult is the Fig. 4a series: end-to-end execution time of the
// sequential allocate-and-access micro-benchmark under periodic context
// checkpointing, for both page-table consistency schemes.
type Fig4aResult struct {
	Rows []Fig4aRow
}

// persistSchemes orders the two page-table consistency schemes for the
// grid fan-outs below (even cell index = persistent, odd = rebuild).
var persistSchemes = [2]persist.Scheme{persist.Persistent, persist.Rebuild}

// Fig4a regenerates Figure 4a (sizes 64–512 MB, interval 10 ms). The
// size x scheme grid fans out over the worker pool; each cell owns a whole
// machine, so results match a sequential run exactly.
func Fig4a(opt Options) (*Fig4aResult, error) {
	opt = opt.warmed()
	sizes := []int{64, 128, 256, 512}
	ms := make([]float64, len(sizes)*2)
	label := func(idx int) string {
		return fmt.Sprintf("fig4a/%dMB/%v", sizes[idx/2], persistSchemes[idx%2])
	}
	err := forEachTask(opt, len(ms), label, func(idx int) error {
		sizeMB, scheme := sizes[idx/2], persistSchemes[idx%2]
		size := opt.scaleBytes(uint64(sizeMB) << 20)
		f, p, err := opt.persistenceRun(scheme, opt.scaleInterval(ckptInterval))
		if err != nil {
			return err
		}
		start := f.M.Clock.Now()
		if err := seqAllocAccess(f, p, size); err != nil {
			return fmt.Errorf("bench: fig4a %dMB %v: %w", sizeMB, scheme, err)
		}
		ms[idx] = (f.M.Clock.Now() - start).Millis()
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig4aResult{}
	for i, sizeMB := range sizes {
		res.Rows = append(res.Rows, Fig4aRow{
			SizeMB: sizeMB, PersistentMs: ms[i*2], RebuildMs: ms[i*2+1],
		})
	}
	return res, nil
}

// Render prints the series in the paper's layout.
func (r *Fig4aResult) Render() string {
	var b strings.Builder
	b.WriteString("Figure 4a: sequential alloc+access, checkpoint interval 10ms\n")
	b.WriteString("Size      Persistent(ms)  Rebuild(ms)  Rebuild/Persistent\n")
	for _, row := range r.Rows {
		ratio := 0.0
		if row.PersistentMs > 0 {
			ratio = row.RebuildMs / row.PersistentMs
		}
		fmt.Fprintf(&b, "%4dMB    %14.1f  %11.1f  %17.1fx\n", row.SizeMB, row.PersistentMs, row.RebuildMs, ratio)
	}
	return b.String()
}

// CheckShape verifies the published shape: rebuild ≫ persistent at every
// size and the gap grows with size (paper: 2.4× at 64 MB → 74.2× at
// 512 MB; superlinear rebuild growth).
func (r *Fig4aResult) CheckShape() error {
	if len(r.Rows) < 2 {
		return fmt.Errorf("fig4a: too few rows")
	}
	prevRatio := 0.0
	for i, row := range r.Rows {
		if row.RebuildMs <= row.PersistentMs {
			return fmt.Errorf("fig4a: rebuild (%v) not slower than persistent (%v) at %dMB",
				row.RebuildMs, row.PersistentMs, row.SizeMB)
		}
		ratio := row.RebuildMs / row.PersistentMs
		if i > 0 && ratio <= prevRatio {
			return fmt.Errorf("fig4a: ratio not growing with size (%.2f after %.2f at %dMB)",
				ratio, prevRatio, row.SizeMB)
		}
		prevRatio = ratio
	}
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	sizeGrowth := float64(last.SizeMB) / float64(first.SizeMB)
	rebuildGrowth := last.RebuildMs / first.RebuildMs
	if rebuildGrowth <= sizeGrowth {
		return fmt.Errorf("fig4a: rebuild growth %.1fx not superlinear vs size growth %.1fx",
			rebuildGrowth, sizeGrowth)
	}
	return nil
}

// Fig4bRow is one stride point of Fig. 4b.
type Fig4bRow struct {
	Stride       string
	Gap          uint64
	PersistentMs float64
	RebuildMs    float64
}

// Fig4bResult is the Fig. 4b series: stride allocations populate different
// page-table levels; persistent pays per-level consistency, rebuild pays
// checkpoint list maintenance.
type Fig4bResult struct {
	Rows []Fig4bRow
}

// Fig4b regenerates Figure 4b: ten 4 KB pages at 1 GB, 2 MB and 4 KB gaps.
func Fig4b(opt Options) (*Fig4bResult, error) {
	opt = opt.warmed()
	strides := []Fig4bRow{
		{Stride: "1GB", Gap: 1 << 30},
		{Stride: "2MB", Gap: 2 << 20},
		{Stride: "4KB", Gap: 4 << 10},
	}
	const pages = 10
	interval := opt.scaleInterval(ckptInterval)
	// Size the access phase so the run spans a couple of checkpoint
	// intervals (the paper's stride runs are millisecond-scale under a
	// 10 ms checkpoint period): calibrate cycles-per-round on a plain
	// machine, then fix the same round count for both schemes.
	rounds := calibrateStrideRounds(pages, interval)
	ms := make([]float64, len(strides)*2)
	label := func(idx int) string {
		return fmt.Sprintf("fig4b/%s/%v", strides[idx/2].Stride, persistSchemes[idx%2])
	}
	err := forEachTask(opt, len(ms), label, func(idx int) error {
		row, scheme := strides[idx/2], persistSchemes[idx%2]
		f, p, err := opt.persistenceRun(scheme, opt.scaleInterval(ckptInterval))
		if err != nil {
			return err
		}
		start := f.M.Clock.Now()
		if err := strideAccess(f, p, row.Gap, pages, rounds); err != nil {
			return fmt.Errorf("bench: fig4b %s %v: %w", row.Stride, scheme, err)
		}
		ms[idx] = (f.M.Clock.Now() - start).Millis()
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig4bResult{}
	for i, row := range strides {
		row.PersistentMs, row.RebuildMs = ms[i*2], ms[i*2+1]
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the series.
func (r *Fig4bResult) Render() string {
	var b strings.Builder
	b.WriteString("Figure 4b: stride allocations (10 x 4KB pages), checkpoint interval 10ms\n")
	b.WriteString("Stride    Persistent(ms)  Rebuild(ms)\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s  %14.3f  %11.3f\n", row.Stride, row.PersistentMs, row.RebuildMs)
	}
	return b.String()
}

// CheckShape verifies the paper's orderings: persistent costs more than
// rebuild at the 1 GB and 2 MB strides (more page-table levels updated),
// and less at 4 KB (minimal page-table modifications).
func (r *Fig4bResult) CheckShape() error {
	if len(r.Rows) != 3 {
		return fmt.Errorf("fig4b: want 3 strides, got %d", len(r.Rows))
	}
	byStride := map[string]Fig4bRow{}
	for _, row := range r.Rows {
		byStride[row.Stride] = row
	}
	for _, s := range []string{"1GB", "2MB"} {
		row := byStride[s]
		if row.PersistentMs <= row.RebuildMs {
			return fmt.Errorf("fig4b: persistent (%v) not dearer than rebuild (%v) at %s stride",
				row.PersistentMs, row.RebuildMs, s)
		}
	}
	if row := byStride["4KB"]; row.PersistentMs >= row.RebuildMs {
		return fmt.Errorf("fig4b: persistent (%v) not cheaper than rebuild (%v) at 4KB stride",
			row.PersistentMs, row.RebuildMs)
	}
	return nil
}

// TableIIIRow is one alloc/free size of Table III.
type TableIIIRow struct {
	SizeMB       int
	PersistentMs float64
	RebuildMs    float64
}

// TableIIIResult is Table III: execution time with periodic checkpointing
// under mmap/munmap churn of different fixed sizes over a 512 MB space.
type TableIIIResult struct {
	TotalMB int
	Rows    []TableIIIRow
}

// TableIII regenerates Table III.
func TableIII(opt Options) (*TableIIIResult, error) {
	opt = opt.warmed()
	total := opt.scaleBytes(512 << 20)
	sizes := []int{64, 128, 256}
	ms := make([]float64, len(sizes)*2)
	label := func(idx int) string {
		return fmt.Sprintf("tableIII/%dMB/%v", sizes[idx/2], persistSchemes[idx%2])
	}
	err := forEachTask(opt, len(ms), label, func(idx int) error {
		sizeMB, scheme := sizes[idx/2], persistSchemes[idx%2]
		chunk := opt.scaleBytes(uint64(sizeMB) << 20)
		if chunk > total/2 {
			chunk = total / 2
		}
		f, p, err := opt.persistenceRun(scheme, opt.scaleInterval(ckptInterval))
		if err != nil {
			return err
		}
		start := f.M.Clock.Now()
		if err := churn(f, p, total, chunk); err != nil {
			return fmt.Errorf("bench: tableIII %dMB %v: %w", sizeMB, scheme, err)
		}
		ms[idx] = (f.M.Clock.Now() - start).Millis()
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &TableIIIResult{TotalMB: int(total >> 20)}
	for i, sizeMB := range sizes {
		res.Rows = append(res.Rows, TableIIIRow{
			SizeMB: sizeMB, PersistentMs: ms[i*2], RebuildMs: ms[i*2+1],
		})
	}
	return res, nil
}

// Render prints Table III.
func (r *TableIIIResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table III: mmap/munmap churn over %dMB, checkpoint interval 10ms\n", r.TotalMB)
	b.WriteString("Alloc/Free Size  Persistent(ms)  Rebuild(ms)\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%11dMB    %14.1f  %11.1f\n", row.SizeMB, row.PersistentMs, row.RebuildMs)
	}
	return b.String()
}

// CheckShape verifies Table III's shape: both schemes grow with the churn
// size and persistent stays well below rebuild.
func (r *TableIIIResult) CheckShape() error {
	for i, row := range r.Rows {
		if row.PersistentMs >= row.RebuildMs {
			return fmt.Errorf("tableIII: persistent (%v) not cheaper than rebuild (%v) at %dMB",
				row.PersistentMs, row.RebuildMs, row.SizeMB)
		}
		if i > 0 {
			prev := r.Rows[i-1]
			if row.PersistentMs <= prev.PersistentMs {
				return fmt.Errorf("tableIII: persistent not growing with churn size")
			}
			if row.RebuildMs <= prev.RebuildMs {
				return fmt.Errorf("tableIII: rebuild not growing with churn size")
			}
		}
	}
	return nil
}

// TableIVRow is one (size, interval) cell pair of Table IV.
type TableIVRow struct {
	SizeMB       int
	Interval     time.Duration
	PersistentMs float64
	RebuildMs    float64
}

// TableIVResult is Table IV: influence of the checkpoint interval.
type TableIVResult struct {
	Rows []TableIVRow
}

// TableIV regenerates Table IV: churn+access under 10 ms, 100 ms and 1 s
// checkpoint intervals.
func TableIV(opt Options) (*TableIVResult, error) {
	opt = opt.warmed()
	total := opt.scaleBytes(512 << 20)
	const rounds = 4
	intervals := []time.Duration{10 * time.Millisecond, 100 * time.Millisecond, time.Second}
	sizes := []int{64, 128, 256}
	ms := make([]float64, len(sizes)*len(intervals)*2)
	label := func(idx int) string {
		cell := idx / 2
		return fmt.Sprintf("tableIV/%dMB/%v/%v",
			sizes[cell/len(intervals)], intervals[cell%len(intervals)], persistSchemes[idx%2])
	}
	err := forEachTask(opt, len(ms), label, func(idx int) error {
		cell := idx / 2
		sizeMB, iv := sizes[cell/len(intervals)], intervals[cell%len(intervals)]
		scheme := persistSchemes[idx%2]
		chunk := opt.scaleBytes(uint64(sizeMB) << 20)
		if chunk > total/2 {
			chunk = total / 2
		}
		f, p, err := opt.persistenceRun(scheme, opt.scaleInterval(iv))
		if err != nil {
			return err
		}
		start := f.M.Clock.Now()
		if err := churnAccess(f, p, total, chunk, rounds); err != nil {
			return fmt.Errorf("bench: tableIV %dMB %v %v: %w", sizeMB, iv, scheme, err)
		}
		ms[idx] = (f.M.Clock.Now() - start).Millis()
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &TableIVResult{}
	for si, sizeMB := range sizes {
		for ii, iv := range intervals {
			cell := si*len(intervals) + ii
			res.Rows = append(res.Rows, TableIVRow{
				SizeMB: sizeMB, Interval: iv,
				PersistentMs: ms[cell*2], RebuildMs: ms[cell*2+1],
			})
		}
	}
	return res, nil
}

// Render prints Table IV.
func (r *TableIVResult) Render() string {
	var b strings.Builder
	b.WriteString("Table IV: influence of checkpoint interval (churn + repeated access)\n")
	b.WriteString("Alloc/Free  Interval  Persistent(ms)  Rebuild(ms)\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8dMB  %8s  %14.1f  %11.1f\n",
			row.SizeMB, row.Interval, row.PersistentMs, row.RebuildMs)
	}
	return b.String()
}

// CheckShape verifies Table IV's shape: persistent is flat across
// intervals; rebuild falls steeply as the interval widens; at 1 s rebuild
// undercuts persistent (the crossover showing the benefit of a DRAM-hosted
// page table once checkpoint-driven maintenance is rare).
func (r *TableIVResult) CheckShape() error {
	bySize := map[int][]TableIVRow{}
	for _, row := range r.Rows {
		bySize[row.SizeMB] = append(bySize[row.SizeMB], row)
	}
	for size, rows := range bySize {
		if len(rows) != 3 {
			return fmt.Errorf("tableIV: %dMB has %d interval rows", size, len(rows))
		}
		r10, r100, r1s := rows[0], rows[1], rows[2]
		// Persistent flat: within 20% across intervals.
		if rel := r1s.PersistentMs / r10.PersistentMs; rel < 0.8 || rel > 1.2 {
			return fmt.Errorf("tableIV: persistent not flat at %dMB (%.2f rel)", size, rel)
		}
		// Rebuild falls with widening interval.
		if !(r10.RebuildMs > r100.RebuildMs && r100.RebuildMs > r1s.RebuildMs) {
			return fmt.Errorf("tableIV: rebuild not falling with interval at %dMB (%v > %v > %v)",
				size, r10.RebuildMs, r100.RebuildMs, r1s.RebuildMs)
		}
		// Meaningful reduction from 10ms to 100ms (paper: ~5x).
		if r10.RebuildMs/r100.RebuildMs < 2 {
			return fmt.Errorf("tableIV: rebuild reduction 10ms→100ms only %.2fx at %dMB",
				r10.RebuildMs/r100.RebuildMs, size)
		}
		// Crossover at 1 s: rebuild beats persistent.
		if r1s.RebuildMs >= r1s.PersistentMs {
			return fmt.Errorf("tableIV: no crossover at 1s for %dMB (rebuild %v >= persistent %v)",
				size, r1s.RebuildMs, r1s.PersistentMs)
		}
	}
	return nil
}
