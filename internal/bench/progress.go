package bench

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Tracker accumulates live progress for a bench run: which experiments are
// running or done, how many grid tasks have completed out of the plan, how
// many trace records the replayers have consumed, and an ETA derived from
// the wall-clock durations of completed tasks. It is purely observational
// — attaching one never changes scheduling or results — and every method
// is safe on a nil receiver, so call sites need no guards.
//
// Snapshot is the read side; it is what the monitor's /progress endpoint
// serves and what kindle-bench's live stderr line renders.
type Tracker struct {
	mu      sync.Mutex
	now     func() time.Time
	start   time.Time
	workers int
	planned int
	done    int
	doneDur time.Duration
	records uint64
	nextID  int
	active  map[int]activeTask
	expSeq  []string
	exps    map[string]*expInfo

	// etaCap is the last reported positive ETA. Out-of-order completions
	// under -parallel can raise the raw estimate (a long task folds into
	// the average late), so Snapshot clamps to this, making the reported
	// ETA monotone non-increasing while the plan is fixed. AddTasks resets
	// it: new planned work legitimately moves the ETA out.
	etaCap    time.Duration
	etaCapSet bool
}

type activeTask struct {
	label string
	since time.Time
}

type expInfo struct {
	state   string // "running" | "done"
	started time.Time
	dur     time.Duration
}

// NewTracker returns an empty tracker with its start time pinned to now.
func NewTracker() *Tracker { return newTrackerAt(time.Now) }

// newTrackerAt injects the clock (tests).
func newTrackerAt(now func() time.Time) *Tracker {
	return &Tracker{
		now:    now,
		start:  now(),
		active: map[int]activeTask{},
		exps:   map[string]*expInfo{},
	}
}

// SetWorkers records the worker-pool width the ETA divides by.
func (t *Tracker) SetWorkers(n int) {
	if t == nil || n <= 0 {
		return
	}
	t.mu.Lock()
	t.workers = n
	t.mu.Unlock()
}

// ExperimentStarted marks a top-level experiment as running.
func (t *Tracker) ExperimentStarted(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.exps[name]; !ok {
		t.expSeq = append(t.expSeq, name)
	}
	t.exps[name] = &expInfo{state: "running", started: t.now()}
}

// ExperimentFinished marks a top-level experiment as done.
func (t *Tracker) ExperimentFinished(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.exps[name]
	if !ok {
		e = &expInfo{started: t.now()}
		t.exps[name] = e
		t.expSeq = append(t.expSeq, name)
	}
	e.state = "done"
	e.dur = t.now().Sub(e.started)
}

// AddTasks grows the planned-task total (called once per grid fan-out).
func (t *Tracker) AddTasks(n int) {
	if t == nil || n <= 0 {
		return
	}
	t.mu.Lock()
	t.planned += n
	t.etaCapSet = false
	t.mu.Unlock()
}

// AddRecords counts trace records consumed by a finished replay.
func (t *Tracker) AddRecords(n int) {
	if t == nil || n <= 0 {
		return
	}
	t.mu.Lock()
	t.records += uint64(n)
	t.mu.Unlock()
}

// taskStarted registers one in-flight grid task and returns its handle.
func (t *Tracker) taskStarted(label string) int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	t.active[t.nextID] = activeTask{label: label, since: t.now()}
	return t.nextID
}

// taskFinished retires an in-flight task, folding its wall-clock duration
// into the ETA basis.
func (t *Tracker) taskFinished(id int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	a, ok := t.active[id]
	if !ok {
		return
	}
	delete(t.active, id)
	t.done++
	t.doneDur += t.now().Sub(a.since)
}

// ActiveTask is one currently-running grid task in a Snapshot.
type ActiveTask struct {
	Label      string  `json:"label"`
	RunningSec float64 `json:"running_seconds"`
}

// ExperimentStatus is one top-level experiment's state in a Snapshot.
type ExperimentStatus struct {
	Name       string  `json:"name"`
	State      string  `json:"state"`
	ElapsedSec float64 `json:"elapsed_seconds"`
}

// TrackerSnapshot is one consistent view of the run's progress; it is the
// /progress JSON payload.
type TrackerSnapshot struct {
	StartedUTC      string             `json:"started_utc"`
	ElapsedSec      float64            `json:"elapsed_seconds"`
	Workers         int                `json:"workers"`
	TasksDone       int                `json:"tasks_done"`
	TasksPlanned    int                `json:"tasks_planned"`
	Fraction        float64            `json:"fraction"`
	ETASec          float64            `json:"eta_seconds"`
	RecordsReplayed uint64             `json:"records_replayed"`
	Experiments     []ExperimentStatus `json:"experiments,omitempty"`
	Active          []ActiveTask       `json:"active,omitempty"`
}

// Snapshot returns the current progress. ETASec is the average completed-
// task duration times the remaining task count, divided across the worker
// pool; -1 until at least one task has completed (no basis yet).
func (t *Tracker) Snapshot() TrackerSnapshot {
	if t == nil {
		return TrackerSnapshot{ETASec: -1}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	s := TrackerSnapshot{
		StartedUTC:      t.start.UTC().Format(time.RFC3339),
		ElapsedSec:      now.Sub(t.start).Seconds(),
		Workers:         t.workers,
		TasksDone:       t.done,
		TasksPlanned:    t.planned,
		ETASec:          -1,
		RecordsReplayed: t.records,
	}
	if t.planned > 0 {
		s.Fraction = float64(t.done) / float64(t.planned)
	}
	if t.done > 0 && t.planned > t.done {
		avg := t.doneDur / time.Duration(t.done)
		workers := t.workers
		if workers <= 0 {
			workers = 1
		}
		eta := avg * time.Duration(t.planned-t.done) / time.Duration(workers)
		if t.etaCapSet && eta > t.etaCap {
			eta = t.etaCap
		}
		t.etaCap, t.etaCapSet = eta, true
		s.ETASec = eta.Seconds()
	} else if t.done >= t.planned && t.planned > 0 && len(t.active) == 0 {
		s.ETASec = 0
	}
	for _, name := range t.expSeq {
		e := t.exps[name]
		el := e.dur
		if e.state == "running" {
			el = now.Sub(e.started)
		}
		s.Experiments = append(s.Experiments, ExperimentStatus{
			Name: name, State: e.state, ElapsedSec: el.Seconds(),
		})
	}
	for _, a := range t.active {
		s.Active = append(s.Active, ActiveTask{
			Label: a.label, RunningSec: now.Sub(a.since).Seconds(),
		})
	}
	sort.Slice(s.Active, func(i, j int) bool { return s.Active[i].Label < s.Active[j].Label })
	return s
}

// Gauges renders the snapshot's numeric core as /metrics gauges; it has
// the monitor.Options.Gauges signature.
func (t *Tracker) Gauges() map[string]float64 {
	s := t.Snapshot()
	return map[string]float64{
		"kindle_bench_tasks_done":       float64(s.TasksDone),
		"kindle_bench_tasks_planned":    float64(s.TasksPlanned),
		"kindle_bench_fraction":         s.Fraction,
		"kindle_bench_eta_seconds":      s.ETASec,
		"kindle_bench_active_tasks":     float64(len(s.Active)),
		"kindle_bench_records_replayed": float64(s.RecordsReplayed),
	}
}

// Line renders the snapshot as kindle-bench's one-line stderr progress
// report.
func (s TrackerSnapshot) Line() string {
	eta := "eta --"
	switch {
	case s.ETASec == 0 && s.TasksPlanned > 0 && s.TasksDone >= s.TasksPlanned:
		eta = "eta 0s"
	case s.ETASec > 0:
		eta = "eta " + (time.Duration(s.ETASec * float64(time.Second))).Round(time.Second).String()
	}
	running := ""
	for _, e := range s.Experiments {
		if e.State == "running" {
			if running != "" {
				running += ", "
			}
			running += e.Name
		}
	}
	if running != "" {
		running = "  [" + running + "]"
	}
	return fmt.Sprintf("%3.0f%% (%d/%d tasks, %d records, %s)%s",
		100*s.Fraction, s.TasksDone, s.TasksPlanned, s.RecordsReplayed, eta, running)
}
