package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"kindle/internal/gemos"
	"kindle/internal/machine"
	"kindle/internal/traffic"
)

// The nightly suite (`make nightly`, .github/workflows/nightly.yml) runs
// the identity gates at a scale too slow for every push: a long-horizon
// checkpoint/crash/recovery lifecycle with hundreds of idle-heavy phases,
// and a large multi-tenant traffic run, each compared stepped vs
// event-driven. Gated on KINDLE_NIGHTLY=1 so `go test ./...` stays fast.
// On divergence the dumps are written into KINDLE_NIGHTLY_DIR (when set)
// for CI artifact upload.

func nightlyEnabled(t *testing.T) {
	if os.Getenv("KINDLE_NIGHTLY") != "1" {
		t.Skip("nightly suite disabled; set KINDLE_NIGHTLY=1")
	}
}

// saveNightlyDump writes a divergence artifact when KINDLE_NIGHTLY_DIR is
// set, returning the path it wrote (or "" when saving is off).
func saveNightlyDump(t *testing.T, name string, data []byte) string {
	dir := os.Getenv("KINDLE_NIGHTLY_DIR")
	if dir == "" {
		return ""
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("nightly: cannot create artifact dir: %v", err)
		return ""
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Logf("nightly: cannot write artifact: %v", err)
		return ""
	}
	return path
}

// TestNightlyLongHorizonIdentity is the push-gate lifecycle identity test
// scaled up: 64 phases with 100 ms idle windows — 6.4 s of simulated time,
// ~20 G cycles, thousands of checkpoints — crashing and recovering twice
// as deep into the run.
func TestNightlyLongHorizonIdentity(t *testing.T) {
	nightlyEnabled(t)
	cfg := LongHorizonConfig{
		Phases:       64,
		OpsPerPhase:  64,
		IdlePerPhase: 100 * time.Millisecond,
		IdleTick:     1 * time.Microsecond,
		Interval:     2 * time.Millisecond,
		CrashAtPhase: 32,
	}
	cfg.EventDriven = false
	stepped, err := RunLongHorizon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.EventDriven = true
	event, err := RunLongHorizon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stepped.Checkpoints < 100 {
		t.Fatalf("only %d checkpoints started; nightly lifecycle not exercising the timer", stepped.Checkpoints)
	}
	if !bytes.Equal(stepped.Dump, event.Dump) {
		a := saveNightlyDump(t, "longhorizon-stepped.stats", stepped.Dump)
		b := saveNightlyDump(t, "longhorizon-event.stats", event.Dump)
		t.Fatalf("long-horizon dumps differ (artifacts: %s, %s):\n%s", a, b, firstDumpDiff(stepped.Dump, event.Dump))
	}
}

// TestNightlyTrafficIdentity runs the traffic engine at a scale the push
// gate cannot afford — 32 tenants, 2000 ops each, contending for one small
// machine — and requires byte-identical dumps from a repeat run and from
// the event-driven clock.
func TestNightlyTrafficIdentity(t *testing.T) {
	nightlyEnabled(t)
	spec := traffic.DefaultSpec()
	spec.Tenants = 32
	spec.Ops = 2000
	spec.Seed = 42
	run := func(event bool) []byte {
		cfg := machine.TestConfig()
		cfg.EventDrivenClock = event
		m := machine.New(cfg)
		eng, err := traffic.New(gemos.Boot(m), spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return []byte(m.Stats.Dump(""))
	}
	first := run(false)
	repeat := run(false)
	event := run(true)
	if !bytes.Equal(first, repeat) {
		a := saveNightlyDump(t, "traffic-first.stats", first)
		b := saveNightlyDump(t, "traffic-repeat.stats", repeat)
		t.Fatalf("repeat traffic run diverged (artifacts: %s, %s):\n%s", a, b, firstDumpDiff(first, repeat))
	}
	if !bytes.Equal(first, event) {
		a := saveNightlyDump(t, "traffic-stepped.stats", first)
		b := saveNightlyDump(t, "traffic-event.stats", event)
		t.Fatalf("event-clock traffic run diverged (artifacts: %s, %s):\n%s", a, b, firstDumpDiff(first, event))
	}
}
