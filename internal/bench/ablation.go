package bench

import (
	"fmt"
	"strings"

	"kindle/internal/gemos"
	"kindle/internal/mem"
	"kindle/internal/persist"
	"kindle/internal/sim"
)

// ExtCheckCostRow is one calibration point of the cost-model ablation.
type ExtCheckCostRow struct {
	CheckNanos   float64
	PersistentMs float64
	RebuildMs    float64
	Ratio        float64
}

// ExtCheckCostResult ablates the rebuild scheme's per-page check cost —
// the one calibrated constant behind Fig. 4a — on the sequential
// alloc+access micro-benchmark, making the sensitivity of the headline
// ratio to the calibration explicit (see EXPERIMENTS.md's notes).
type ExtCheckCostResult struct {
	SizeMB int
	Rows   []ExtCheckCostRow
}

// ExtCheckCost runs the ablation at one Fig. 4a point (256 MB scaled).
func ExtCheckCost(opt Options) (*ExtCheckCostResult, error) {
	opt = opt.warmed()
	size := opt.scaleBytes(256 << 20)
	res := &ExtCheckCostResult{SizeMB: int(size >> 20)}
	for _, ns := range []float64{1000, 3000, 10000} {
		row := ExtCheckCostRow{CheckNanos: ns}
		for _, scheme := range []persist.Scheme{persist.Persistent, persist.Rebuild} {
			f, p, err := opt.persistenceRun(scheme, opt.scaleInterval(ckptInterval))
			if err != nil {
				return nil, err
			}
			f.Manager().Costs.CheckPerPage = sim.FromNanos(ns)
			start := f.M.Clock.Now()
			if err := seqAllocAccessAblation(f.K, p, size); err != nil {
				return nil, err
			}
			ms := (f.M.Clock.Now() - start).Millis()
			if scheme == persist.Persistent {
				row.PersistentMs = ms
			} else {
				row.RebuildMs = ms
			}
		}
		row.Ratio = row.RebuildMs / row.PersistentMs
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// seqAllocAccessAblation mirrors the Fig. 4a micro-benchmark against a
// kernel handle (keeping the ablation file self-contained).
func seqAllocAccessAblation(k *gemos.Kernel, p *gemos.Process, size uint64) error {
	a, err := k.Mmap(p, 0, size, gemos.ProtRead|gemos.ProtWrite, gemos.MapNVM)
	if err != nil {
		return err
	}
	pages := size / mem.PageSize
	for i := uint64(0); i < pages; i++ {
		if _, err := k.M.Core.Access(a+i*mem.PageSize, true, 8); err != nil {
			return err
		}
		if i%tickEvery == 0 {
			k.Tick()
		}
	}
	k.Tick()
	return k.Munmap(p, a, size)
}

// Render prints the ablation.
func (r *ExtCheckCostResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: rebuild-scheme per-page check cost (%dMB alloc+access)\n", r.SizeMB)
	b.WriteString("Check cost  Persistent(ms)  Rebuild(ms)  Ratio\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%7.0fns  %14.1f  %11.1f  %5.1fx\n",
			row.CheckNanos, row.PersistentMs, row.RebuildMs, row.Ratio)
	}
	return b.String()
}

// CheckShape verifies the calibration behaves as designed: persistent is
// insensitive to the knob while rebuild's cost — and thus the Fig. 4a
// ratio — grows monotonically with it.
func (r *ExtCheckCostResult) CheckShape() error {
	for i := 1; i < len(r.Rows); i++ {
		prev, cur := r.Rows[i-1], r.Rows[i]
		if rel := cur.PersistentMs / prev.PersistentMs; rel < 0.95 || rel > 1.05 {
			return fmt.Errorf("extCheckCost: persistent sensitive to rebuild knob (%.2f rel)", rel)
		}
		if cur.RebuildMs <= prev.RebuildMs {
			return fmt.Errorf("extCheckCost: rebuild cost not growing with check cost")
		}
		if cur.Ratio <= prev.Ratio {
			return fmt.Errorf("extCheckCost: ratio not growing with check cost")
		}
	}
	return nil
}
