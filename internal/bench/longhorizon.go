package bench

import (
	"bytes"
	"fmt"
	"time"

	"kindle/internal/core"
	"kindle/internal/gemos"
	"kindle/internal/machine"
	"kindle/internal/mem"
	"kindle/internal/persist"
	"kindle/internal/sim"
)

// LongHorizonConfig describes the idle-heavy checkpoint-lifecycle workload
// behind BenchmarkEventClockLongHorizon and the event-clock identity test:
// short bursts of page touches separated by long idle windows in which only
// the checkpoint timer and NVM write-buffer drains are active, optionally
// with a crash + recovery in the middle. Zero-value fields take defaults.
type LongHorizonConfig struct {
	// EventDriven selects machine.Config.EventDrivenClock for the run. The
	// results are byte-identical either way; only host wall clock differs.
	EventDriven bool
	// Phases is the number of work+idle rounds (default 6).
	Phases int
	// OpsPerPhase is the number of page touches per round (default 32).
	OpsPerPhase int
	// IdlePerPhase is the simulated idle gap after each round's ops
	// (default 50 ms — 150 M cycles of dead time per round).
	IdlePerPhase time.Duration
	// IdleTick is the stepped engine's cycle-group grain during the idle
	// gaps (default 250 ns). The event-driven engine jumps straight
	// between due boundaries instead of visiting each one.
	IdleTick time.Duration
	// Interval is the checkpoint interval (default 5 ms).
	Interval time.Duration
	// CrashAtPhase, when >0, checkpoints, power-fails and recovers the
	// machine after that round (0 = never).
	CrashAtPhase int
}

func (c LongHorizonConfig) withDefaults() LongHorizonConfig {
	if c.Phases == 0 {
		c.Phases = 6
	}
	if c.OpsPerPhase == 0 {
		c.OpsPerPhase = 32
	}
	if c.IdlePerPhase == 0 {
		c.IdlePerPhase = 50 * time.Millisecond
	}
	if c.IdleTick == 0 {
		c.IdleTick = 250 * time.Nanosecond
	}
	if c.Interval == 0 {
		c.Interval = 5 * time.Millisecond
	}
	return c
}

// LongHorizonResult is one lifecycle run's outcome.
type LongHorizonResult struct {
	// Cycles is the final simulated clock.
	Cycles sim.Cycles
	// Checkpoints is persist.checkpoints_started at the end of the run.
	Checkpoints uint64
	// Crashes is machine.crashes at the end of the run.
	Crashes uint64
	// Dump is the full stats dump, the identity-comparison artifact.
	Dump []byte
}

// RunLongHorizon executes the lifecycle on a fresh small machine. The
// workload is fully deterministic (seeded RNG, no host-time dependence), so
// two runs differing only in EventDriven must return identical results —
// that is the event-clock identity gate.
func RunLongHorizon(cfg LongHorizonConfig) (*LongHorizonResult, error) {
	cfg = cfg.withDefaults()
	mcfg := machine.TestConfig()
	mcfg.EventDrivenClock = cfg.EventDriven
	f := core.New(mcfg)
	if _, err := f.EnablePersistence(persist.Rebuild, cfg.Interval); err != nil {
		return nil, fmt.Errorf("bench: longhorizon persistence: %w", err)
	}
	p, err := f.K.Spawn("longhorizon")
	if err != nil {
		return nil, err
	}
	f.K.Switch(p)
	f.Manager().Start()

	const pages = 64
	base, err := f.K.Mmap(p, 0, pages*mem.PageSize, gemos.ProtRead|gemos.ProtWrite, gemos.MapNVM)
	if err != nil {
		return nil, err
	}
	rng := sim.NewRNG(1)
	for phase := 1; phase <= cfg.Phases; phase++ {
		for i := 0; i < cfg.OpsPerPhase; i++ {
			off := uint64(rng.Intn(pages)) * mem.PageSize
			if _, err := f.M.Core.Access(base+off, true, 8); err != nil {
				return nil, fmt.Errorf("bench: longhorizon phase %d op %d: %w", phase, i, err)
			}
		}
		f.RunIdle(cfg.IdlePerPhase, cfg.IdleTick)
		if phase == cfg.CrashAtPhase {
			f.Manager().Checkpoint()
			f.Crash()
			procs, err := f.Recover(cfg.Interval)
			if err != nil {
				return nil, fmt.Errorf("bench: longhorizon recovery: %w", err)
			}
			if len(procs) != 1 {
				return nil, fmt.Errorf("bench: longhorizon recovered %d processes, want 1", len(procs))
			}
			p = procs[0]
			f.K.Switch(p)
			f.Manager().Start()
		}
	}

	var dump bytes.Buffer
	if err := f.M.Stats.WriteStatsFile(&dump); err != nil {
		return nil, err
	}
	return &LongHorizonResult{
		Cycles:      f.M.Clock.Now(),
		Checkpoints: f.M.Stats.Get("persist.checkpoints_started"),
		Crashes:     f.M.Stats.Get("machine.crashes"),
		Dump:        dump.Bytes(),
	}, nil
}
