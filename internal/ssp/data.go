package ssp

import (
	"fmt"

	"kindle/internal/gemos"
	"kindle/internal/mem"
)

// This file implements SSP's functional data path: sub-page shadow
// routing. Within a consistency interval, the first store to a cache line
// is routed to the copy (original or shadow) *not* holding the committed
// version; the interval-end flush makes the new copies durable and flips
// the per-line `current` bits atomically with the metadata write-back. A
// crash mid-interval therefore exposes only pre-interval data — the
// failure-atomic-section guarantee SSP provides.
//
// The timed replay path (core.Replay / cpu.Core.Access) models only
// timing; workloads that need data fidelity under SSP use WriteData /
// ReadData, which combine the timed access with the routed functional
// store/load.

// latestCopy returns the frame holding the newest data for the line: the
// current-selector side (the translate hook flips it at the first write
// after a commit).
func (mt *meta) latestCopy(bit uint) uint64 {
	if mt.current&(1<<bit) == 0 {
		return mt.orig
	}
	return mt.shadow
}

// committedCopy returns the frame holding the committed (crash-safe)
// version of the line.
func (mt *meta) committedCopy(bit uint) uint64 {
	if mt.commit&(1<<bit) == 0 {
		return mt.orig
	}
	return mt.shadow
}

// WriteData performs a timed store at va in p's address space and routes
// the bytes to the correct physical copy at cache-line granularity. The
// write stays non-durable (pending in the persist domain) until the
// interval-end flush commits it.
func (c *Controller) WriteData(p *gemos.Process, va uint64, data []byte) error {
	if len(data) == 0 {
		return nil
	}
	// Timed path (TLB, caches, fault handling, bitmap hooks).
	if _, err := c.m.Core.Access(va, true, len(data)); err != nil {
		return err
	}
	for len(data) > 0 {
		vpn := va / mem.PageSize
		bit := uint((va % mem.PageSize) / mem.LineSize)
		lineEnd := (va/mem.LineSize + 1) * mem.LineSize
		n := int(lineEnd - va)
		if n > len(data) {
			n = len(data)
		}
		mt, ok := c.entries[vpn]
		if !ok || !c.inRange(va) {
			// Outside the FASE range: plain store to the mapped frame.
			pa, mapped := c.m.Core.VirtToPhys(va)
			if !mapped {
				return fmt.Errorf("ssp: WriteData to unmapped va %#x", va)
			}
			c.m.Ctrl.Write(pa, data[:n])
		} else {
			// The timed Access above already let the translate hook flip
			// the current selector for this line, so the latest copy is
			// the destination.
			dest := mt.latestCopy(bit)
			off := mem.PhysAddr(va % mem.PageSize)
			c.m.Ctrl.Write(mem.FrameBase(dest)+off, data[:n])
			c.routedWrites.Inc()
		}
		data = data[n:]
		va += uint64(n)
	}
	return nil
}

// ReadData performs a timed load at va and returns the newest bytes,
// following the per-line routing (working copy if written this interval,
// committed copy otherwise).
func (c *Controller) ReadData(p *gemos.Process, va uint64, buf []byte) error {
	if len(buf) == 0 {
		return nil
	}
	if _, err := c.m.Core.Access(va, false, len(buf)); err != nil {
		return err
	}
	for len(buf) > 0 {
		vpn := va / mem.PageSize
		bit := uint((va % mem.PageSize) / mem.LineSize)
		lineEnd := (va/mem.LineSize + 1) * mem.LineSize
		n := int(lineEnd - va)
		if n > len(buf) {
			n = len(buf)
		}
		mt, ok := c.entries[vpn]
		if !ok || !c.inRange(va) {
			pa, mapped := c.m.Core.VirtToPhys(va)
			if !mapped {
				return fmt.Errorf("ssp: ReadData from unmapped va %#x", va)
			}
			c.m.Ctrl.Read(pa, buf[:n])
		} else {
			src := mt.latestCopy(bit)
			off := mem.PhysAddr(va % mem.PageSize)
			c.m.Ctrl.Read(mem.FrameBase(src)+off, buf[:n])
		}
		buf = buf[n:]
		va += uint64(n)
	}
	return nil
}

// ReadCommittedData returns the crash-safe view of va — what a reboot
// after an immediate power failure would observe. Tests use it to verify
// failure atomicity.
func (c *Controller) ReadCommittedData(p *gemos.Process, va uint64, buf []byte) error {
	for len(buf) > 0 {
		vpn := va / mem.PageSize
		bit := uint((va % mem.PageSize) / mem.LineSize)
		lineEnd := (va/mem.LineSize + 1) * mem.LineSize
		n := int(lineEnd - va)
		if n > len(buf) {
			n = len(buf)
		}
		mt, ok := c.entries[vpn]
		if !ok {
			return fmt.Errorf("ssp: no SSP pair for va %#x", va)
		}
		src := mt.committedCopy(bit)
		off := mem.PhysAddr(va % mem.PageSize)
		c.m.Ctrl.Domain().ReadCommitted(mem.FrameBase(src)+off, buf[:n])
		buf = buf[n:]
		va += uint64(n)
	}
	return nil
}
