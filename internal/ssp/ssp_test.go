package ssp_test

import (
	"testing"
	"time"

	"kindle/internal/core"
	"kindle/internal/gemos"
	"kindle/internal/sim"
	"kindle/internal/ssp"
	"kindle/internal/workloads"
)

func setup(t testing.TB, cfg ssp.Config) (*core.Framework, *ssp.Controller, *core.Replay, *gemos.Process) {
	t.Helper()
	f := core.NewSmall()
	c, err := ssp.Attach(f.K, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wcfg := workloads.SmallYCSB()
	wcfg.Ops = 20_000
	img, err := workloads.YCSB(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	p, rep, err := f.LaunchInit(img)
	if err != nil {
		t.Fatal(err)
	}
	return f, c, rep, p
}

func TestPairAllocationOnFault(t *testing.T) {
	f, c, rep, _ := setup(t, ssp.DefaultConfig())
	lo, hi := rep.NVMRange()
	c.Enable(lo, hi)
	if _, err := rep.Step(1000); err != nil {
		t.Fatal(err)
	}
	if c.Pairs() == 0 {
		t.Fatal("no page pairs allocated")
	}
	if f.M.Stats.Get("ssp.pair_alloc") == 0 {
		t.Fatal("pair allocations not counted")
	}
	c.Disable()
}

func TestUpdatedBitmapSetOnNVMWrite(t *testing.T) {
	f, c, rep, _ := setup(t, ssp.DefaultConfig())
	lo, hi := rep.NVMRange()
	c.Enable(lo, hi)
	rep.Step(2000)
	if f.M.Stats.Get("ssp.line_dirtied") == 0 {
		t.Fatal("no lines dirtied despite NVM writes")
	}
	c.Disable()
}

func TestIntervalFlushesAndClears(t *testing.T) {
	f, c, rep, _ := setup(t, ssp.DefaultConfig())
	lo, hi := rep.NVMRange()
	c.Enable(lo, hi)
	rep.Step(2000)
	c.IntervalEnd()
	if f.M.Stats.Get("ssp.lines_flushed") == 0 {
		t.Fatal("interval flushed nothing")
	}
	// After the flush, the TLB bitmaps are clear: a second immediate
	// interval flushes nothing new.
	before := f.M.Stats.Get("ssp.lines_flushed")
	c.IntervalEnd()
	if f.M.Stats.Get("ssp.lines_flushed") != before {
		t.Fatal("bitmaps not cleared by interval end")
	}
	c.Disable()
}

func TestPeriodicIntervalsFire(t *testing.T) {
	// The 20k-record test replay spans well under a millisecond of
	// simulated time, so the test uses microsecond intervals; the bench
	// harness runs the paper's 1/5/10 ms over full traces.
	cfg := ssp.Config{
		ConsistencyInterval:   sim.FromDuration(10 * time.Microsecond),
		ConsolidationInterval: sim.FromDuration(20 * time.Microsecond),
	}
	f, c, rep, _ := setup(t, cfg)
	lo, hi := rep.NVMRange()
	c.Enable(lo, hi)
	if err := rep.Run(); err != nil {
		t.Fatal(err)
	}
	if f.M.Stats.Get("ssp.intervals") == 0 {
		t.Fatal("no consistency intervals fired during replay")
	}
	if f.M.Stats.Get("ssp.consolidation_runs") == 0 {
		t.Fatal("consolidation thread never ran")
	}
	c.Disable()
}

func TestWiderIntervalLowersOverhead(t *testing.T) {
	// Fig. 5's shape: overhead(1ms) > overhead(10ms).
	run := func(interval time.Duration) float64 {
		cfg := ssp.Config{
			ConsistencyInterval:   sim.FromDuration(interval),
			ConsolidationInterval: sim.FromDuration(100 * time.Microsecond),
		}
		f, c, rep, _ := setup(t, cfg)
		lo, hi := rep.NVMRange()
		c.Enable(lo, hi)
		if err := rep.Run(); err != nil {
			t.Fatal(err)
		}
		c.Disable()
		return f.M.Clock.Now().Millis()
	}
	baseline := func() float64 {
		f, _, rep, _ := setup(t, ssp.DefaultConfig()) // attached but never enabled
		if err := rep.Run(); err != nil {
			t.Fatal(err)
		}
		return f.M.Clock.Now().Millis()
	}()
	t1 := run(10 * time.Microsecond)
	t10 := run(100 * time.Microsecond)
	if t1 <= t10 {
		t.Fatalf("narrow interval (%v ms) not dearer than wide (%v ms)", t1, t10)
	}
	if t10 < baseline {
		t.Fatalf("SSP run (%v) faster than no-consistency baseline (%v)", t10, baseline)
	}
}

func TestConsolidationMergesEvicted(t *testing.T) {
	f, c, rep, _ := setup(t, ssp.DefaultConfig())
	lo, hi := rep.NVMRange()
	c.Enable(lo, hi)
	rep.Step(20_000)
	c.IntervalEnd()
	// A context switch flushes the TLB, which writes the extension
	// metadata back and marks the entries consolidation candidates.
	f.M.TLB.InvalidateAll()
	c.Consolidate()
	if f.M.Stats.Get("ssp.pages_consolidated") == 0 {
		t.Fatal("nothing consolidated despite TLB churn")
	}
	c.Disable()
}

func TestShadowFreedOnUnmap(t *testing.T) {
	f, c, rep, _ := setup(t, ssp.DefaultConfig())
	lo, hi := rep.NVMRange()
	c.Enable(lo, hi)
	rep.Step(5000)
	pairs := c.Pairs()
	if pairs == 0 {
		t.Fatal("no pairs")
	}
	if err := rep.Teardown(); err != nil {
		t.Fatal(err)
	}
	if c.Pairs() != 0 {
		t.Fatalf("pairs after teardown = %d", c.Pairs())
	}
	_ = f
	c.Disable()
}

func TestDisableStopsActivity(t *testing.T) {
	f, c, rep, _ := setup(t, ssp.Config{
		ConsistencyInterval:   sim.FromDuration(time.Millisecond),
		ConsolidationInterval: sim.FromDuration(time.Millisecond),
	})
	lo, hi := rep.NVMRange()
	c.Enable(lo, hi)
	rep.Step(2000)
	c.Disable()
	intervals := f.M.Stats.Get("ssp.intervals")
	rep.Step(5000)
	if f.M.Stats.Get("ssp.intervals") != intervals {
		t.Fatal("intervals fired after Disable")
	}
}
