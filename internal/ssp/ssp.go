// Package ssp prototypes Shadow Sub-Paging (Ni et al., MICRO'19) on
// Kindle, following the paper's §III-B implementation: gemOS allocates an
// additional physical page per virtual NVM page; the original and shadow
// page addresses plus the (commit, current) bitmaps live in a metadata
// area (the SSP cache) in NVM; the address-translation hardware — told the
// NVM virtual range and the SSP-cache base through MSRs — sets a bit in
// the TLB entry's `updated` bitmap on every NVM store; at each consistency
// interval the kernel instructs the hardware to push modified bitmaps to
// the SSP cache and then issues clwb for all data and metadata updates;
// an asynchronous thread periodically consolidates the page pairs of
// TLB-evicted entries.
package ssp

import (
	"fmt"
	"time"

	"kindle/internal/cpu"
	"kindle/internal/gemos"
	"kindle/internal/machine"
	"kindle/internal/mem"
	"kindle/internal/sim"
	"kindle/internal/tlb"
)

// metaEntrySize is one SSP-cache record: original PFN, shadow PFN, commit
// bitmap, current bitmap, flags — padded to a cache line so a metadata
// update is one line write + clwb.
const metaEntrySize = 64

// meta mirrors one SSP-cache record on the host side. Per sub-page line,
// two bitmaps select between the original and shadow frames (bit 0 =
// original, 1 = shadow): commit points at the durable version a
// post-crash reader would use, current points at the latest version. A
// line with current != commit has an uncommitted update routed to the
// current side; the interval-end flush makes it durable and copies
// current into commit atomically with the metadata write-back.
type meta struct {
	orig    uint64
	shadow  uint64
	commit  uint64 // durable-version selector per line
	current uint64 // latest-version selector per line
	evicted bool   // TLB entry evicted; consolidation candidate
	dead    bool   // unmapped; skipped by scans
	idx     int    // record index in the SSP cache region
}

// Config parameterizes the prototype.
type Config struct {
	// ConsistencyInterval is the FASE checkpoint period (Fig. 5 sweeps 1,
	// 5 and 10 ms).
	ConsistencyInterval sim.Cycles
	// ConsolidationInterval is the background merge thread period (fixed
	// to 1 ms in the paper's study).
	ConsolidationInterval sim.Cycles
}

// DefaultConfig returns the paper's defaults (5 ms consistency, 1 ms
// consolidation).
func DefaultConfig() Config {
	return Config{
		ConsistencyInterval:   sim.FromDuration(5 * time.Millisecond),
		ConsolidationInterval: sim.FromDuration(time.Millisecond),
	}
}

// Controller is the SSP prototype attached to a kernel.
type Controller struct {
	m   *machine.Machine
	k   *gemos.Kernel
	cfg Config

	cacheBase mem.PhysAddr // SSP cache region (NVM)
	cacheCap  int

	entries map[uint64]*meta // vpn -> record
	ordered []*meta          // deterministic iteration order for the scans
	nextIdx int

	enabled    bool
	rangeBase  uint64
	rangeEnd   uint64
	intervalEv *sim.Event
	consolEv   *sim.Event

	// Per-access counters (TLB fill, store routing, metadata write-back),
	// resolved once at attach.
	tlbFills     *sim.Counter
	linesDirtied *sim.Counter
	metaWrites   *sim.Counter
	evictWBs     *sim.Counter
	routedWrites *sim.Counter
}

// Attach builds the prototype over k. It reuses the kernel's reserved NVM
// area for the SSP cache (the persistence manager and the prototypes are
// separate studies and do not share a machine).
func Attach(k *gemos.Kernel, cfg Config) (*Controller, error) {
	base, size := k.PersistArea()
	if size < 1*mem.MiB {
		return nil, fmt.Errorf("ssp: reserved NVM area too small (%d)", size)
	}
	c := &Controller{
		m:         k.M,
		k:         k,
		cfg:       cfg,
		cacheBase: base,
		cacheCap:  int(size / metaEntrySize),
		entries:   make(map[uint64]*meta),

		tlbFills:     k.M.Stats.Counter("ssp.tlb_fill"),
		linesDirtied: k.M.Stats.Counter("ssp.line_dirtied"),
		metaWrites:   k.M.Stats.Counter("ssp.meta_write"),
		evictWBs:     k.M.Stats.Counter("ssp.tlb_evict_writeback"),
		routedWrites: k.M.Stats.Counter("ssp.data_routed_write"),
	}
	k.Meta = c
	k.M.Core.SetHooks(c)
	k.M.TLB.SetEvictHook(c.onTLBEvict)
	k.M.Core.WriteMSR(cpu.MSRSSPCacheBase, uint64(base))
	return c, nil
}

// LogVMAChange implements gemos.MetaLogger (unused by SSP).
func (c *Controller) LogVMAChange(p *gemos.Process) {}

// LogMapping implements gemos.MetaLogger: on every NVM page mapping the
// page-allocation routine allocates the additional physical page and
// records the pair in the SSP cache, as in the paper's gemOS change.
func (c *Controller) LogMapping(p *gemos.Process, vpn, pfn uint64, mapped bool) {
	if !mapped {
		if mt, ok := c.entries[vpn]; ok {
			c.k.Alloc.FreeFrame(mt.shadow)
			delete(c.entries, vpn)
			mt.dead = true
		}
		return
	}
	shadow, err := c.k.Alloc.AllocFrame(mem.NVM)
	if err != nil {
		// Out of NVM: run without a shadow (consistency not guaranteed
		// for this page); the paper's allocator would fail the mmap.
		c.m.Stats.Inc("ssp.shadow_alloc_fail")
		return
	}
	mt := &meta{orig: pfn, shadow: shadow, idx: c.nextIdx % c.cacheCap}
	c.nextIdx++
	c.entries[vpn] = mt
	c.ordered = append(c.ordered, mt)
	c.writeMeta(mt)
	c.m.Stats.Inc("ssp.pair_alloc")
}

// writeMeta stores a record into the SSP cache (timed line write + clwb).
func (c *Controller) writeMeta(mt *meta) {
	ea := c.cacheBase + mem.PhysAddr(mt.idx*metaEntrySize)
	c.m.StoreU64(ea, mt.orig)
	c.m.StoreU64(ea+8, mt.shadow)
	c.m.StoreU64(ea+16, mt.commit)
	c.m.StoreU64(ea+24, mt.current)
	flags := uint64(0)
	if mt.evicted {
		flags = 1
	}
	c.m.StoreU64(ea+32, flags)
	c.m.AccessTimed(ea, true)
	c.m.Core.Clwb(ea)
	c.metaWrites.Inc()
}

// Enable turns the custom hardware on for the given NVM virtual range —
// the checkpoint_start call of the FASE programming model. The range is
// communicated to hardware through MSRs.
func (c *Controller) Enable(rangeBase, rangeEnd uint64) {
	c.rangeBase, c.rangeEnd = rangeBase, rangeEnd
	core := c.m.Core
	core.WriteMSR(cpu.MSRSSPRangeBase, rangeBase)
	core.WriteMSR(cpu.MSRSSPRangeEnd, rangeEnd)
	core.WriteMSR(cpu.MSRSSPEnable, 1)
	c.enabled = true
	c.scheduleInterval()
	c.scheduleConsolidation()
	c.m.Stats.Inc("ssp.enable")
}

// Disable is checkpoint_end for the whole FASE: a final interval flush,
// then hardware off.
func (c *Controller) Disable() {
	if !c.enabled {
		return
	}
	c.IntervalEnd()
	c.enabled = false
	c.m.Core.WriteMSR(cpu.MSRSSPEnable, 0)
	if c.intervalEv != nil {
		c.m.Events.Cancel(c.intervalEv)
	}
	if c.consolEv != nil {
		c.m.Events.Cancel(c.consolEv)
	}
}

func (c *Controller) scheduleInterval() {
	c.intervalEv = c.m.Events.Schedule(c.m.Clock.Now()+c.cfg.ConsistencyInterval, "ssp.interval", func(sim.Cycles) {
		if !c.enabled {
			return
		}
		c.IntervalEnd()
		c.scheduleInterval()
	})
}

func (c *Controller) scheduleConsolidation() {
	c.consolEv = c.m.Events.Schedule(c.m.Clock.Now()+c.cfg.ConsolidationInterval, "ssp.consolidate", func(sim.Cycles) {
		if !c.enabled {
			return
		}
		c.Consolidate()
		c.scheduleConsolidation()
	})
}

// inRange reports whether va is inside the MSR-communicated NVM range.
func (c *Controller) inRange(va uint64) bool {
	return c.enabled && va >= c.rangeBase && va < c.rangeEnd
}

// OnTranslate implements cpu.Hooks: the extended translation hardware
// fills the SSP fields on TLB fill (a memory request to the SSP cache) and
// sets the updated-bitmap bit on NVM stores in range.
func (c *Controller) OnTranslate(e *tlb.Entry, va uint64, write bool) {
	if !e.NVM || !c.inRange(va) {
		return
	}
	vpn := va / mem.PageSize
	mt, ok := c.entries[vpn]
	if !ok {
		return
	}
	if !e.SSPValid {
		// TLB fill of the supplementary fields: read the SSP cache.
		ea := c.cacheBase + mem.PhysAddr(mt.idx*metaEntrySize)
		c.m.AccessTimed(ea, false)
		e.SSPAlt = mt.shadow
		e.SSPCurrent = mt.current
		e.SSPUpdated = 0
		e.SSPValid = true
		mt.evicted = false
		c.tlbFills.Inc()
	}
	if write {
		bit := tlb.PageOffsetLineBit(va)
		if e.SSPUpdated&(1<<bit) == 0 {
			e.SSPUpdated |= 1 << bit
			c.linesDirtied.Inc()
		}
		// First write to the line since its last commit creates the new
		// version on the opposite copy: the remapping the SSP cache
		// controller performs at cache-line granularity.
		if mt.current&(1<<bit) == mt.commit&(1<<bit) {
			mt.current ^= 1 << bit
		}
	}
}

// OnLLCMiss implements cpu.Hooks (unused by SSP).
func (c *Controller) OnLLCMiss(e *tlb.Entry, va uint64, write bool) {}

// onTLBEvict pushes an evicted entry's bitmaps to the SSP cache and marks
// it evicted, the consolidation trigger. The current-selector state is
// already in the metadata (maintained at write time); commit stays
// untouched — durability only moves at interval ends.
func (c *Controller) onTLBEvict(e *tlb.Entry) {
	if !e.SSPValid {
		return
	}
	mt, ok := c.entries[e.VPN]
	if !ok {
		return
	}
	mt.evicted = true
	c.writeMeta(mt)
	c.evictWBs.Inc()
}

// IntervalEnd performs the checkpoint_end activities for one consistency
// interval: the kernel instructs the translation hardware to send all
// modified bitmaps in the TLB to the metadata region, then issues clwb for
// every dirtied data line and the metadata, and fences.
func (c *Controller) IntervalEnd() {
	m := c.m
	m.Core.EnterKernel()
	defer m.Core.ExitKernel()
	start := m.Clock.Now()

	// Hardware pushes every modified bitmap in the TLB to the metadata
	// region (the paper's "send all modified bitmap in TLBs").
	m.TLB.ForEach(func(e *tlb.Entry) {
		if !e.SSPValid || e.SSPUpdated == 0 {
			return
		}
		if mt, ok := c.entries[e.VPN]; ok {
			c.writeMeta(mt)
			e.SSPUpdated = 0
			e.SSPCurrent = mt.current
		}
	})
	// Then the kernel flushes every uncommitted data line (clwb) and
	// commits it, and the metadata write-back flips commit to current —
	// the atomic durability point of the interval.
	var flushed int
	for _, mt := range c.ordered {
		if mt.dead || mt.current == mt.commit {
			continue
		}
		pending := mt.current ^ mt.commit
		for bit := uint(0); bit < mem.LinesPerPage; bit++ {
			if pending&(1<<bit) == 0 {
				continue
			}
			pa := mem.FrameBase(mt.latestCopy(bit)) + mem.PhysAddr(bit*mem.LineSize)
			m.Core.Clwb(pa)
			m.Ctrl.Domain().CommitLine(pa)
			flushed++
		}
		mt.commit = mt.current
		c.writeMeta(mt)
	}
	m.Core.Fence()

	m.Stats.Inc("ssp.intervals")
	m.Stats.Add("ssp.lines_flushed", uint64(flushed))
	m.Stats.Add("ssp.interval_cycles", uint64(m.Clock.Now()-start))
}

// Consolidate is the background thread body: merge the page pairs of
// TLB-evicted entries by copying the lines whose latest version is in the
// shadow back into the original, then reset the bitmaps.
func (c *Controller) Consolidate() {
	m := c.m
	m.Core.EnterKernel()
	defer m.Core.ExitKernel()
	start := m.Clock.Now()

	merged := 0
	var line [mem.LineSize]byte
	for _, mt := range c.ordered {
		if mt.dead || !mt.evicted {
			continue
		}
		// Skip pages with uncommitted updates; only durably shadowed
		// lines may merge back into the original.
		if mt.current != mt.commit {
			continue
		}
		// Inspect the SSP cache entry (timed read).
		ea := c.cacheBase + mem.PhysAddr(mt.idx*metaEntrySize)
		m.AccessTimed(ea, false)
		if mt.commit != 0 {
			for bit := uint(0); bit < mem.LinesPerPage; bit++ {
				if mt.commit&(1<<bit) == 0 {
					continue
				}
				src := mem.FrameBase(mt.shadow) + mem.PhysAddr(bit*mem.LineSize)
				dst := mem.FrameBase(mt.orig) + mem.PhysAddr(bit*mem.LineSize)
				m.AccessTimed(src, false)
				m.AccessTimed(dst, true)
				m.Ctrl.Read(src, line[:])
				m.Ctrl.Write(dst, line[:])
				m.Core.Clwb(dst)
				m.Ctrl.Domain().CommitLine(dst)
			}
			mt.commit = 0
			mt.current = 0
		}
		mt.evicted = false
		c.writeMeta(mt)
		merged++
	}
	if merged > 0 {
		m.Core.Fence()
	}
	m.Stats.Add("ssp.pages_consolidated", uint64(merged))
	m.Stats.Inc("ssp.consolidation_runs")
	m.Stats.Add("ssp.consolidation_cycles", uint64(m.Clock.Now()-start))
}

// Pairs reports how many page pairs are live (tests/diagnostics).
func (c *Controller) Pairs() int { return len(c.entries) }
