package ssp_test

import (
	"bytes"
	"testing"
	"time"

	"kindle/internal/core"
	"kindle/internal/gemos"
	"kindle/internal/mem"
	"kindle/internal/sim"
	"kindle/internal/ssp"
)

// faseSetup boots a machine with an SSP-protected NVM region and returns
// the pieces plus the base VA of a mapped, touched page range.
func faseSetup(t *testing.T, pages int) (*core.Framework, *ssp.Controller, *gemos.Process, uint64) {
	t.Helper()
	f := core.NewSmall()
	c, err := ssp.Attach(f.K, ssp.Config{
		ConsistencyInterval:   sim.FromDuration(time.Second), // manual interval ends only
		ConsolidationInterval: sim.FromDuration(time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := f.K.Spawn("fase")
	if err != nil {
		t.Fatal(err)
	}
	f.K.Switch(p)
	a, err := f.K.Mmap(p, 0, uint64(pages)*mem.PageSize, gemos.ProtRead|gemos.ProtWrite, gemos.MapNVM)
	if err != nil {
		t.Fatal(err)
	}
	c.Enable(a, a+uint64(pages)*mem.PageSize)
	// Fault the pages in (allocates the page pairs).
	for i := 0; i < pages; i++ {
		if _, err := f.M.Core.Access(a+uint64(i)*mem.PageSize, true, 1); err != nil {
			t.Fatal(err)
		}
	}
	return f, c, p, a
}

func TestDataRoutingReadsBack(t *testing.T) {
	f, c, p, a := faseSetup(t, 2)
	msg := []byte("shadow sub-paging!")
	if err := c.WriteData(p, a+100, msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := c.ReadData(p, a+100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read-your-write failed: %q", got)
	}
	_ = f
}

func TestFASEAtomicityUncommittedRollsBack(t *testing.T) {
	f, c, p, a := faseSetup(t, 1)
	// Establish a committed value.
	v1 := []byte("value-1")
	if err := c.WriteData(p, a, v1); err != nil {
		t.Fatal(err)
	}
	c.IntervalEnd() // durability point for v1

	// Overwrite within a new interval, no interval end: uncommitted.
	v2 := []byte("value-2")
	if err := c.WriteData(p, a, v2); err != nil {
		t.Fatal(err)
	}
	// The live view sees v2...
	got := make([]byte, len(v2))
	c.ReadData(p, a, got)
	if !bytes.Equal(got, v2) {
		t.Fatalf("live view = %q", got)
	}
	// ...but the crash-safe view still holds v1.
	c.ReadCommittedData(p, a, got)
	if !bytes.Equal(got, v1) {
		t.Fatalf("committed view = %q, want %q (torn FASE!)", got, v1)
	}
	_ = f
}

func TestFASEAtomicityCommittedSurvives(t *testing.T) {
	f, c, p, a := faseSetup(t, 1)
	v1 := []byte("durable-value")
	if err := c.WriteData(p, a, v1); err != nil {
		t.Fatal(err)
	}
	c.IntervalEnd()
	got := make([]byte, len(v1))
	c.ReadCommittedData(p, a, got)
	if !bytes.Equal(got, v1) {
		t.Fatalf("committed view after interval end = %q", got)
	}
	// The persist domain agrees: a machine crash leaves the committed
	// bytes readable at the committed copy.
	f.M.Crash()
	c.ReadCommittedData(p, a, got)
	if !bytes.Equal(got, v1) {
		t.Fatalf("after crash = %q", got)
	}
}

func TestFASESubPageGranularity(t *testing.T) {
	// Two lines of the same page: commit one, leave the other
	// uncommitted; the crash-safe view mixes per line — exactly the
	// sub-page granularity SSP exists for.
	f, c, p, a := faseSetup(t, 1)
	lineA := a        // line 0
	lineB := a + 1024 // line 16
	c.WriteData(p, lineA, []byte("AAAA"))
	c.WriteData(p, lineB, []byte("BBBB"))
	c.IntervalEnd()
	// New interval: update only line B.
	c.WriteData(p, lineB, []byte("bbbb"))
	got := make([]byte, 4)
	c.ReadCommittedData(p, lineA, got)
	if string(got) != "AAAA" {
		t.Fatalf("line A committed view %q", got)
	}
	c.ReadCommittedData(p, lineB, got)
	if string(got) != "BBBB" {
		t.Fatalf("line B committed view %q (uncommitted bbbb leaked)", got)
	}
	c.ReadData(p, lineB, got)
	if string(got) != "bbbb" {
		t.Fatalf("line B live view %q", got)
	}
	_ = f
}

func TestFASEConsolidationPreservesData(t *testing.T) {
	f, c, p, a := faseSetup(t, 1)
	v := []byte("merge-me")
	c.WriteData(p, a, v)
	c.IntervalEnd()
	// Evict the translation (context-switch flush) and consolidate: data
	// must move back to the original page with no loss.
	f.M.TLB.InvalidateAll()
	c.Consolidate()
	got := make([]byte, len(v))
	if err := c.ReadData(p, a, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, v) {
		t.Fatalf("after consolidation: %q", got)
	}
	c.ReadCommittedData(p, a, got)
	if !bytes.Equal(got, v) {
		t.Fatalf("committed after consolidation: %q", got)
	}
	if f.M.Stats.Get("ssp.pages_consolidated") == 0 {
		t.Fatal("nothing consolidated")
	}
}

func TestFASEWriteOutsideRangeIsPlain(t *testing.T) {
	f := core.NewSmall()
	c, err := ssp.Attach(f.K, ssp.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, _ := f.K.Spawn("plain")
	f.K.Switch(p)
	a, _ := f.K.Mmap(p, 0, mem.PageSize, gemos.ProtRead|gemos.ProtWrite, gemos.MapNVM)
	// SSP never enabled: WriteData behaves as a plain store.
	if err := c.WriteData(p, a, []byte("plain")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 5)
	if err := c.ReadData(p, a, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "plain" {
		t.Fatalf("plain store round trip: %q", got)
	}
}
