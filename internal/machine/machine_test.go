package machine

import (
	"testing"

	"kindle/internal/cpu"
	"kindle/internal/mem"
	"kindle/internal/pt"
	"kindle/internal/sim"
	"kindle/internal/tlb"
)

// frameAlloc is a minimal allocator over the machine layout for tests.
type frameAlloc struct {
	layout mem.Layout
	nextD  uint64
	nextN  uint64
}

func newFrameAlloc(l mem.Layout) *frameAlloc {
	return &frameAlloc{layout: l, nextD: mem.FrameNumber(l.DRAMBase), nextN: mem.FrameNumber(l.NVMBase)}
}

func (a *frameAlloc) AllocFrame(k mem.Kind) (uint64, error) {
	if k == mem.DRAM {
		pfn := a.nextD
		a.nextD++
		return pfn, nil
	}
	pfn := a.nextN
	a.nextN++
	return pfn, nil
}
func (a *frameAlloc) FreeFrame(pfn uint64) {}

// demandPager installs a fresh frame on every fault.
type demandPager struct {
	m     *Machine
	table *pt.Table
	alloc *frameAlloc
	kind  mem.Kind
	count int
}

func (p *demandPager) HandlePageFault(va uint64, write bool) (sim.Cycles, error) {
	p.count++
	pfn, err := p.alloc.AllocFrame(p.kind)
	if err != nil {
		return 0, err
	}
	flags := uint64(pt.FlagWritable | pt.FlagUser)
	if p.kind == mem.NVM {
		flags |= pt.FlagNVM
	}
	_, _, err = p.table.Install(va&^(mem.PageSize-1), pfn, flags)
	return 500, err
}

func newBooted(t testing.TB, kind mem.Kind) (*Machine, *pt.Table, *demandPager) {
	t.Helper()
	m := New(TestConfig())
	alloc := newFrameAlloc(m.Cfg.Layout)
	table, err := pt.New(m, alloc, mem.DRAM, m.Stats)
	if err != nil {
		t.Fatal(err)
	}
	pager := &demandPager{m: m, table: table, alloc: alloc, kind: kind}
	m.Core.SetFaultHandler(pager)
	m.Core.SetAddressSpace(table)
	return m, table, pager
}

func TestDemandPagingAccess(t *testing.T) {
	m, table, pager := newBooted(t, mem.DRAM)
	lat, err := m.Core.Access(0x400000, true, 8)
	if err != nil {
		t.Fatal(err)
	}
	if lat == 0 {
		t.Fatal("no latency charged")
	}
	if pager.count != 1 {
		t.Fatalf("faults = %d, want 1", pager.count)
	}
	if table.Mapped() != 1 {
		t.Fatalf("mapped = %d", table.Mapped())
	}
	// Second access: TLB hit, no fault.
	lat2, err := m.Core.Access(0x400000, false, 8)
	if err != nil {
		t.Fatal(err)
	}
	if lat2 >= lat {
		t.Fatalf("warm access (%d) not cheaper than cold (%d)", lat2, lat)
	}
	if pager.count != 1 {
		t.Fatal("extra fault on warm access")
	}
}

func TestAccessSpansPages(t *testing.T) {
	m, _, pager := newBooted(t, mem.DRAM)
	// 16 bytes straddling a page boundary → two faults.
	if _, err := m.Core.Access(2*mem.PageSize-8, true, 16); err != nil {
		t.Fatal(err)
	}
	if pager.count != 2 {
		t.Fatalf("faults = %d, want 2", pager.count)
	}
}

func TestAccessMultiLine(t *testing.T) {
	m, _, _ := newBooted(t, mem.DRAM)
	// 256-byte access touches 4 or 5 lines; the latency must exceed a
	// single-line warm access.
	m.Core.Access(0x1000, true, 256)
	warmWide, _ := m.Core.Access(0x1000, false, 256)
	warmOne, _ := m.Core.Access(0x1000, false, 8)
	if warmWide <= warmOne {
		t.Fatalf("multi-line access (%d) not dearer than single (%d)", warmWide, warmOne)
	}
}

func TestWriteToReadOnlyFaults(t *testing.T) {
	m, table, _ := newBooted(t, mem.DRAM)
	alloc := newFrameAlloc(m.Cfg.Layout)
	pfn, _ := alloc.AllocFrame(mem.DRAM)
	table.Install(0x7000, pfn, pt.FlagUser) // not writable
	if _, err := m.Core.Access(0x7000, true, 1); err == nil {
		t.Fatal("write to read-only page succeeded")
	}
	if _, err := m.Core.Access(0x7000, false, 1); err != nil {
		t.Fatalf("read of read-only page failed: %v", err)
	}
}

func TestNVMAccessSlowerThanDRAM(t *testing.T) {
	md, _, _ := newBooted(t, mem.DRAM)
	mn, _, _ := newBooted(t, mem.NVM)
	// Touch many pages cold; NVM-backed machine must accumulate more time
	// (reads miss to the PCM array).
	for i := uint64(0); i < 64; i++ {
		md.Core.Access(0x100000+i*mem.PageSize, false, 8)
		mn.Core.Access(0x100000+i*mem.PageSize, false, 8)
	}
	if mn.Clock.Now() <= md.Clock.Now() {
		t.Fatalf("NVM machine (%d) not slower than DRAM machine (%d)", mn.Clock.Now(), md.Clock.Now())
	}
}

func TestNVMFlagPropagatesToTLB(t *testing.T) {
	m, _, _ := newBooted(t, mem.NVM)
	m.Core.Access(0x9000, true, 1)
	e, _ := m.TLB.Lookup(0x9000 / mem.PageSize)
	if e == nil || !e.NVM {
		t.Fatal("TLB entry missing NVM tag")
	}
}

func TestHooksFire(t *testing.T) {
	m, _, _ := newBooted(t, mem.NVM)
	h := &recordingHooks{}
	m.Core.SetHooks(h)
	m.Core.Access(0x9000, true, 1)
	if h.translates == 0 {
		t.Fatal("OnTranslate never fired")
	}
	if h.llcMisses == 0 {
		t.Fatal("OnLLCMiss never fired on a cold access")
	}
	warmBefore := h.llcMisses
	m.Core.Access(0x9000, true, 1)
	if h.llcMisses != warmBefore {
		t.Fatal("warm access counted an LLC miss")
	}
}

type recordingHooks struct {
	translates int
	llcMisses  int
}

func (h *recordingHooks) OnTranslate(e *tlb.Entry, va uint64, write bool) { h.translates++ }
func (h *recordingHooks) OnLLCMiss(e *tlb.Entry, va uint64, write bool)   { h.llcMisses++ }

func TestKernelTimeAttribution(t *testing.T) {
	m, _, _ := newBooted(t, mem.DRAM)
	m.Core.EnterKernel()
	m.Core.Access(0x1000, true, 8)
	m.Core.ExitKernel()
	if m.Stats.Get("cpu.kernel_cycles") == 0 {
		t.Fatal("no kernel cycles recorded")
	}
	user := m.Stats.Get("cpu.user_cycles")
	m.Core.Access(0x1000, false, 8)
	if m.Stats.Get("cpu.user_cycles") <= user {
		t.Fatal("no user cycles recorded")
	}
}

func TestMSRs(t *testing.T) {
	m := New(TestConfig())
	if m.Core.ReadMSR(cpu.MSRSSPEnable) != 0 {
		t.Fatal("MSR not zero initially")
	}
	m.Core.WriteMSR(cpu.MSRSSPRangeBase, 0x1000)
	if m.Core.ReadMSR(cpu.MSRSSPRangeBase) != 0x1000 {
		t.Fatal("MSR write lost")
	}
}

func TestClwbFencePersistence(t *testing.T) {
	m, _, _ := newBooted(t, mem.NVM)
	m.Core.Access(0x9000, true, 8)
	pa, ok := m.Core.VirtToPhys(0x9000)
	if !ok {
		t.Fatal("VirtToPhys failed")
	}
	m.Ctrl.Write(pa, []byte("persist!"))
	m.Core.Clwb(pa)
	m.Core.Fence()
	m.Crash()
	got := make([]byte, 8)
	m.Ctrl.Read(pa, got)
	if string(got) != "persist!" {
		t.Fatalf("after crash: %q", got)
	}
}

func TestCrashLosesVolatileState(t *testing.T) {
	m, _, _ := newBooted(t, mem.DRAM)
	m.Core.Access(0x1000, true, 8)
	m.Core.Regs.GPR[cpu.RAX] = 42
	m.Events.Schedule(m.Clock.Now()+100, "x", func(sim.Cycles) {})
	m.Crash()
	if m.Core.Regs.GPR[cpu.RAX] != 0 {
		t.Fatal("registers survived crash")
	}
	if m.Events.Len() != 0 {
		t.Fatal("events survived crash")
	}
	if m.Core.AddressSpace() != nil {
		t.Fatal("PTBR survived crash")
	}
	if m.BootGeneration() != 1 {
		t.Fatalf("boot generation = %d", m.BootGeneration())
	}
	// Access without an address space fails cleanly.
	if _, err := m.Core.Access(0x1000, false, 1); err == nil {
		t.Fatal("access succeeded with no address space")
	}
}

func TestTickFiresDueEvents(t *testing.T) {
	m := New(TestConfig())
	fired := false
	m.Events.Schedule(m.Clock.Now()+10, "t", func(sim.Cycles) { fired = true })
	m.Tick()
	if fired {
		t.Fatal("event fired early")
	}
	m.Clock.Advance(10)
	m.Tick()
	if !fired {
		t.Fatal("event did not fire")
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Layout.DRAMSize != 3*mem.GiB || cfg.Layout.NVMSize != 2*mem.GiB {
		t.Fatal("layout != Table I")
	}
	if cfg.NVM.WriteBuf != 48 || cfg.NVM.ReadBuf != 64 {
		t.Fatal("NVM buffers != Table I")
	}
	if cfg.Caches.L1.Size != 32*mem.KiB || cfg.Caches.L2.Size != 512*mem.KiB || cfg.Caches.LLC.Size != 2*mem.MiB {
		t.Fatal("cache sizes != paper")
	}
}

func TestZeroSizeAccessRejected(t *testing.T) {
	m, _, _ := newBooted(t, mem.DRAM)
	if _, err := m.Core.Access(0x1000, false, 0); err == nil {
		t.Fatal("zero-size access accepted")
	}
}

func BenchmarkWarmAccess(b *testing.B) {
	m, _, _ := newBooted(b, mem.DRAM)
	m.Core.Access(0x1000, true, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Core.Access(0x1000, false, 8)
	}
}

func BenchmarkColdPageStream(b *testing.B) {
	// Wrap the virtual stream so arbitrary b.N stays within the small
	// test layout's frame pool (the bump allocator holds 8K pages here).
	m, _, _ := newBooted(b, mem.DRAM)
	const window = 8192
	for i := 0; i < b.N; i++ {
		m.Core.Access(uint64(0x100000)+uint64(i%window)*mem.PageSize, true, 8)
	}
}
