package machine

import "kindle/internal/sim"

// RunUntil advances the machine with no instructions in flight until the
// clock reaches target, firing due events along the way. group is the
// cycle-group grain of the stepped engine: the clock advances group cycles
// at a time (clamped at target) and Tick runs at each boundary, exactly as
// an OS run loop interleaving Clock.Advance with Machine.Tick would.
// group <= 0 means a single step to target.
//
// With Cfg.EventDrivenClock set, the loop instead jumps the clock straight
// to the first group boundary at or past the earliest pending deadline
// (clamped at target). Boundaries strictly before that deadline have no due
// events — their Tick is a no-op with zero observable effect — so skipping
// them leaves clocks, stats and event firing order byte-identical to the
// stepped engine. Handlers that advance the clock themselves (checkpoints
// do) are handled identically in both engines: each iteration re-reads the
// clock and measures the next boundary from wherever the last handler left
// it.
func (m *Machine) RunUntil(target, group sim.Cycles) {
	now := m.Clock.Now()
	if target <= now {
		return
	}
	if group <= 0 {
		group = target - now
	}
	if !m.Cfg.EventDrivenClock {
		for now < target {
			step := group
			if rem := target - now; rem < step {
				step = rem
			}
			m.Clock.Advance(step)
			m.Tick()
			now = m.Clock.Now()
		}
		return
	}
	for now < target {
		next := target
		if when, ok := m.Events.NextDeadline(); ok && when <= target {
			// First group boundary >= the deadline. A deadline already
			// at or before now (scheduled by a handler that just ran)
			// fires at the next boundary, now+group — the stepped engine
			// would not see it before then either.
			boundary := now + group
			if when > now {
				k := (when - now + group - 1) / group
				boundary = now + k*group
			}
			if boundary < next {
				next = boundary
			}
		}
		m.Clock.AdvanceTo(next)
		m.Tick()
		now = m.Clock.Now()
	}
}

// RunIdle advances the machine d cycles of idle time at the given group
// grain; see RunUntil.
func (m *Machine) RunIdle(d, group sim.Cycles) {
	m.RunUntil(m.Clock.Now()+d, group)
}
