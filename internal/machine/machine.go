// Package machine composes the hardware half of Kindle — memory system,
// caches, TLBs, CPU core, event queue — into a single simulated machine
// with the paper's Table I configuration, and provides crash/reboot
// semantics.
package machine

import (
	"kindle/internal/cache"
	"kindle/internal/cpu"
	"kindle/internal/mem"
	"kindle/internal/obs"
	"kindle/internal/sim"
	"kindle/internal/tlb"
)

// Config selects the hardware parameters.
type Config struct {
	Layout mem.Layout
	DRAM   mem.DRAMTiming
	NVM    mem.NVMTiming
	Caches cache.HierConfig
	TLB1   tlb.Config
	TLB2   tlb.Config
	Seed   uint64

	// DisableFastPaths turns off the semantically invisible software fast
	// paths (the core's translation cache and single-line access shortcut,
	// the cache and TLB MRU-way probes). Simulated output is bit-identical
	// either way — the switch exists for the equivalence tests and for
	// isolating fast-path bugs.
	DisableFastPaths bool

	// EventDrivenClock makes Machine.RunUntil advance the virtual clock
	// directly to the next group boundary with a due event instead of
	// ticking every cycle group through dead time. Simulated output is
	// bit-identical either way (same boundaries fire the same events; the
	// skipped boundaries are exactly the ones where RunDue would have been
	// a no-op) — pinned by TestEventClockStatsIdentity and the machine
	// run-loop property tests, same identity-gate pattern as
	// DisableFastPaths.
	EventDrivenClock bool

	// Trace enables the structured event tracer. Zero-value Categories
	// leaves tracing off (Machine.Tracer stays nil; emission sites are
	// nil-safe and allocation-free in that state).
	Trace obs.Config
}

// DefaultConfig returns the paper's configuration (Table I): 3 GB DRAM +
// 2 GB NVM, DDR4-2400, PCM with 64/48 read/write buffers, 32 KB/512 KB/2 MB
// caches, 3 GHz in-order core.
func DefaultConfig() Config {
	return Config{
		Layout: mem.DefaultLayout(),
		DRAM:   mem.DDR4_2400(),
		NVM:    mem.PCM(),
		Caches: cache.DefaultHierConfig(),
		TLB1:   tlb.DefaultConfigL1(),
		TLB2:   tlb.DefaultConfigL2(),
		Seed:   1,
	}
}

// TestConfig returns a small-memory configuration for unit tests.
func TestConfig() Config {
	c := DefaultConfig()
	c.Layout = mem.SmallLayout()
	return c
}

// Machine is one simulated computer.
type Machine struct {
	Cfg    Config
	Clock  *sim.Clock
	Stats  *sim.Stats
	Events *sim.Queue
	RNG    *sim.RNG

	Ctrl *mem.Controller
	Hier *cache.Hierarchy
	TLB  *tlb.TLB
	Core *cpu.Core

	// Tracer is non-nil only when Cfg.Trace.Categories selects at least
	// one category. OS-level components (gemos, persist) emit through it.
	Tracer *obs.Tracer

	booted int // reboot generation, incremented by Crash
}

// New builds and powers on a machine.
func New(cfg Config) *Machine {
	clock := sim.NewClock()
	stats := sim.NewStats()
	ctrl := mem.NewController(cfg.Layout, cfg.DRAM, cfg.NVM, clock, stats)
	hier := cache.NewHierarchy(cfg.Caches, ctrl, clock, stats)
	t := tlb.New(cfg.TLB1, cfg.TLB2, stats)
	core := cpu.New(clock, stats, t, hier, ctrl)
	if cfg.DisableFastPaths {
		core.SetFastPaths(false)
		hier.SetMRUProbe(false)
		t.SetMRUProbe(false)
	}
	m := &Machine{
		Cfg:    cfg,
		Clock:  clock,
		Stats:  stats,
		Events: sim.NewQueue(),
		RNG:    sim.NewRNG(cfg.Seed),
		Ctrl:   ctrl,
		Hier:   hier,
		TLB:    t,
		Core:   core,
	}
	// NVM write-buffer drains surface as "nvm.drain" events so the
	// event-driven run loop sees them as deadlines (Config.EventDrivenClock).
	ctrl.NVM().SetEvents(m.Events)
	if cfg.Trace.Categories != 0 {
		capacity := cfg.Trace.BufferCap
		if capacity <= 0 {
			capacity = obs.DefaultBufferCap
		}
		m.Tracer = obs.New(clock, capacity, cfg.Trace.Categories)
		ctrl.SetTracer(m.Tracer)
		hier.SetTracer(m.Tracer)
		core.SetTracer(m.Tracer)
	}
	return m
}

// AccessTimed satisfies pt.Memory: a timed access through the cache
// hierarchy; the clock advances.
func (m *Machine) AccessTimed(pa mem.PhysAddr, write bool) sim.Cycles {
	lat := m.Hier.Access(pa, write)
	m.Clock.Advance(lat)
	return lat
}

// LoadU64 satisfies pt.Memory (functional read).
func (m *Machine) LoadU64(pa mem.PhysAddr) uint64 { return m.Ctrl.ReadU64(pa) }

// StoreU64 satisfies pt.Memory (functional write).
func (m *Machine) StoreU64(pa mem.PhysAddr, v uint64) { m.Ctrl.WriteU64(pa, v) }

// CommitRange satisfies pt.Committer: make [pa, pa+size) durable.
func (m *Machine) CommitRange(pa mem.PhysAddr, size uint64) {
	m.Ctrl.Domain().CommitRange(pa, size)
}

// SetCommitHook installs (nil removes) an interceptor for NVM durability
// events on the persist domain. Fault-injection harnesses use it to crash
// the machine at commit-point granularity (see internal/fault).
func (m *Machine) SetCommitHook(h mem.CommitHook) { m.Ctrl.Domain().SetCommitHook(h) }

// Tick fires every event due at the current time. The OS run loop calls it
// between instructions/operations.
func (m *Machine) Tick() { m.Events.RunDue(m.Clock.Now()) }

// Crash models a power failure: caches, TLBs, core registers, DRAM and all
// non-durable NVM lines are lost; scheduled activities are forgotten. The
// clock keeps its value (downtime is not modeled). The reboot generation
// increments so software can detect the restart.
func (m *Machine) Crash() {
	m.Ctrl.Crash()
	m.Hier.Reset()
	m.Core.Reset()
	m.Events.Drain()
	m.booted++
	m.Stats.Inc("machine.crashes")
}

// BootGeneration returns how many times the machine has crashed/rebooted.
func (m *Machine) BootGeneration() int { return m.booted }

// ElapsedMillis is the simulated wall time in milliseconds.
func (m *Machine) ElapsedMillis() float64 { return m.Clock.Now().Millis() }
