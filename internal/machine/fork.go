package machine

import (
	"fmt"

	"kindle/internal/cache"
	"kindle/internal/cpu"
	"kindle/internal/mem"
	"kindle/internal/sim"
	"kindle/internal/tlb"
)

// Snapshot is a booted, warmed machine frozen in time: every piece of
// architectural state plus a copy-on-write fork of the frame store.
// Taking one is O(directory + small state), not O(resident memory); each
// NewFromSnapshot re-forks the frozen store, so any number of children
// (and the parent, which keeps running) share frames read-only and
// privatize 2 MiB slabs only on first write.
//
// Pending events are captured as (deadline, name) pairs — handlers are
// closures and cannot be copied between machines — and are re-armed by
// name on restore (RearmEvents). A snapshot whose event names the
// restoring stack cannot re-arm refuses to restore rather than silently
// dropping a timer.
//
// All exported fields are plain data, so a Snapshot gob-encodes; the
// frame store travels separately via BackingImage/SetBackingImage.
type Snapshot struct {
	Cfg    Config
	Now    sim.Cycles
	RNG    uint64
	Booted int
	Stats  sim.StatsState
	Mem    mem.ControllerState
	Hier   cache.HierarchyState
	TLB    tlb.State
	Core   cpu.CoreState
	Events []sim.PendingEvent

	// backing is the frozen COW frame store (every slab shared). It is
	// never written through, so concurrent Forks of it are race-free.
	backing *mem.Backing
}

// Snapshot captures the machine's full architectural state. The machine
// remains usable; its frame store is silently switched to copy-on-write
// (first writes after the snapshot privatize slabs).
func (m *Machine) Snapshot() *Snapshot {
	return &Snapshot{
		Cfg:     m.Cfg,
		Now:     m.Clock.Now(),
		RNG:     m.RNG.State(),
		Booted:  m.booted,
		Stats:   m.Stats.CaptureState(),
		Mem:     m.Ctrl.CaptureState(),
		Hier:    m.Hier.CaptureState(),
		TLB:     m.TLB.CaptureState(),
		Core:    m.Core.CaptureState(),
		Events:  m.Events.PendingEvents(),
		backing: m.Ctrl.Backing().Fork(),
	}
}

// BackingImage materializes the frozen frame store for serialization
// (ascending PFN order, deterministic bytes).
func (s *Snapshot) BackingImage() mem.BackingImage {
	return s.backing.Image()
}

// SetBackingImage installs a deserialized frame store. The rebuilt store
// is frozen immediately so later restores share it copy-on-write.
func (s *Snapshot) SetBackingImage(img mem.BackingImage) error {
	b, err := mem.NewBackingFromImage(img)
	if err != nil {
		return err
	}
	s.backing = b.Fork()
	return nil
}

// NewFromSnapshot builds a fresh machine and restores the snapshot into
// it: identical Config wiring (so pre-resolved counter handles stay
// valid), then every captured state overlaid, with the frame store forked
// copy-on-write from the snapshot. Pending events are NOT re-armed here —
// the caller finishes with RearmEvents once OS-level timers have their
// handlers back (machine-only users can pass nil extras).
//
// Safe to call concurrently on one Snapshot: the frozen store is only
// read, and everything else is deep-copied.
func NewFromSnapshot(s *Snapshot) (*Machine, error) {
	if s.backing == nil {
		return nil, fmt.Errorf("machine: snapshot has no frame store (missing SetBackingImage after load?)")
	}
	m := New(s.Cfg)
	m.Clock.AdvanceTo(s.Now)
	m.RNG.SetState(s.RNG)
	m.booted = s.Booted
	m.Stats.RestoreState(s.Stats)
	if err := m.Ctrl.RestoreState(s.Mem, s.backing.Fork()); err != nil {
		return nil, err
	}
	if err := m.Hier.RestoreState(s.Hier); err != nil {
		return nil, err
	}
	if err := m.TLB.RestoreState(s.TLB); err != nil {
		return nil, err
	}
	m.Core.RestoreState(s.Core)
	return m, nil
}

// RearmEvents re-schedules the snapshot's pending events on m's queue, in
// captured firing order (deadline, then original insertion order), so the
// fresh queue reproduces the parent's FIFO tie-breaking. Hardware events
// the machine owns ("nvm.drain") re-arm internally; anything else must
// have a handler in extra, keyed by event name, that schedules exactly
// one event at the given deadline. An event with no handler is an error:
// the snapshot came from a stack (SSP, HSCC, scheduler, traffic, interval
// dumps...) this restore path does not support.
func (m *Machine) RearmEvents(s *Snapshot, extra map[string]func(when sim.Cycles)) error {
	for _, ev := range s.Events {
		if ev.Name == "nvm.drain" {
			m.Ctrl.NVM().RearmDrain(ev.When)
			continue
		}
		fn, ok := extra[ev.Name]
		if !ok {
			return fmt.Errorf("machine: snapshot has pending event %q with no re-arm handler", ev.Name)
		}
		fn(ev.When)
	}
	return nil
}

// Fork snapshots m and immediately restores a child from it — the
// convenience path for machines with no OS-level timers pending (anything
// beyond "nvm.drain" needs Snapshot + NewFromSnapshot + RearmEvents with
// explicit handlers, and fails here).
func (m *Machine) Fork() (*Machine, error) {
	s := m.Snapshot()
	child, err := NewFromSnapshot(s)
	if err != nil {
		return nil, err
	}
	if err := child.RearmEvents(s, nil); err != nil {
		return nil, err
	}
	return child, nil
}
