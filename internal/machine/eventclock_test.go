package machine

import (
	"fmt"
	"sync"
	"testing"

	"kindle/internal/sim"
)

// runloopScript drives one Machine's RunUntil through a randomized event
// population — one-shot events, self-rescheduling periodic timers, and
// handlers that advance the clock mid-tick (checkpoints do) — and returns
// the firing log plus the final clock. The script depends only on the seed,
// so a stepped and an event-driven machine given the same seed must produce
// identical logs: that is the run-loop half of the identity gate.
func runloopScript(t *testing.T, seed uint64, eventDriven bool) ([]string, sim.Cycles) {
	t.Helper()
	cfg := TestConfig()
	cfg.EventDrivenClock = eventDriven
	m := New(cfg)
	rng := sim.NewRNG(seed)
	var log []string
	record := func(name string, fire sim.Cycles) {
		log = append(log, fmt.Sprintf("%s@%d/clock%d", name, fire, m.Clock.Now()))
	}

	// One-shot events, deadlines drawn small so several share a boundary.
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("one%d", i)
		when := sim.Cycles(rng.Intn(5000))
		m.Events.Schedule(when, name, func(fire sim.Cycles) { record(name, fire) })
	}
	// Periodic timers with distinct periods; one also burns simulated time
	// inside its handler, pushing the clock past upcoming boundaries.
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("per%d", i)
		period := sim.Cycles(50 + rng.Intn(400))
		burn := sim.Cycles(0)
		if i == 1 {
			burn = sim.Cycles(rng.Intn(300))
		}
		var fn func(sim.Cycles)
		fn = func(fire sim.Cycles) {
			record(name, fire)
			if burn > 0 {
				m.Clock.Advance(burn)
			}
			if fire < 40_000 {
				m.Events.Schedule(m.Clock.Now()+period, name, fn)
			}
		}
		m.Events.Schedule(period, name, fn)
	}

	// Alternate idle stretches at varying grains with instant work bursts
	// that schedule more events (some already due).
	for step := 0; step < 8; step++ {
		group := sim.Cycles(1 + rng.Intn(700))
		m.RunIdle(sim.Cycles(2000+rng.Intn(6000)), group)
		name := fmt.Sprintf("mid%d", step)
		delta := sim.Cycles(rng.Intn(300)) // sometimes 0: due immediately
		m.Events.Schedule(m.Clock.Now()+delta, name, func(fire sim.Cycles) { record(name, fire) })
	}
	m.RunUntil(m.Clock.Now()+20_000, 256)
	return log, m.Clock.Now()
}

// TestRunUntilEnginesEquivalent is the randomized property: for any event
// population and idle pattern, the stepped and event-driven run loops fire
// the same events at the same deadlines with the same clock values, and
// finish at the same cycle.
func TestRunUntilEnginesEquivalent(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		stepped, sc := runloopScript(t, seed, false)
		event, ec := runloopScript(t, seed, true)
		if sc != ec {
			t.Fatalf("seed %d: final clocks differ: stepped %d, event %d", seed, sc, ec)
		}
		if len(stepped) != len(event) {
			t.Fatalf("seed %d: fired %d vs %d events\nstepped: %v\nevent:   %v",
				seed, len(stepped), len(event), stepped, event)
		}
		for i := range stepped {
			if stepped[i] != event[i] {
				t.Fatalf("seed %d: firing %d differs: stepped %q, event %q",
					seed, i, stepped[i], event[i])
			}
		}
	}
}

// TestRunUntilDegenerateArgs pins the edge cases: a target at or before now
// is a no-op, and group 0 means one step straight to the target.
func TestRunUntilDegenerateArgs(t *testing.T) {
	for _, eventDriven := range []bool{false, true} {
		cfg := TestConfig()
		cfg.EventDrivenClock = eventDriven
		m := New(cfg)
		m.Clock.AdvanceTo(1000)
		m.RunUntil(1000, 16) // target == now
		m.RunUntil(500, 16)  // target < now
		if m.Clock.Now() != 1000 {
			t.Fatalf("eventDriven=%v: clock moved to %d on no-op RunUntil", eventDriven, m.Clock.Now())
		}
		fired := 0
		m.Events.Schedule(1500, "x", func(sim.Cycles) { fired++ })
		m.RunUntil(2000, 0) // single step to target
		if m.Clock.Now() != 2000 || fired != 1 {
			t.Fatalf("eventDriven=%v: clock %d fired %d, want 2000/1", eventDriven, m.Clock.Now(), fired)
		}
	}
}

// TestRunUntilConcurrentMachinesIsolated runs many event-driven machines
// concurrently, each with self-rescheduling events mutating only their own
// machine's state. Under -race this pins the satellite requirement that
// event callbacks share no state across sharded machines.
func TestRunUntilConcurrentMachinesIsolated(t *testing.T) {
	const n = 8
	logs := make([][]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := TestConfig()
			cfg.EventDrivenClock = true
			m := New(cfg)
			var fn func(sim.Cycles)
			fn = func(fire sim.Cycles) {
				logs[i] = append(logs[i], fmt.Sprintf("tick@%d", fire))
				m.Stats.Inc("test.ticks")
				if fire < 100_000 {
					m.Events.Schedule(m.Clock.Now()+1000, "tick", fn)
				}
			}
			m.Events.Schedule(1000, "tick", fn)
			m.RunUntil(200_000, 64)
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if len(logs[i]) != len(logs[0]) {
			t.Fatalf("machine %d fired %d events, machine 0 fired %d", i, len(logs[i]), len(logs[0]))
		}
		for j := range logs[i] {
			if logs[i][j] != logs[0][j] {
				t.Fatalf("machine %d log diverges at %d: %q vs %q", i, j, logs[i][j], logs[0][j])
			}
		}
	}
}
