// Persistence: compare the two page-table consistency schemes of the
// paper's §III-A on a sequential allocate-and-access micro-benchmark, at a
// reduced footprint (a miniature of Figure 4a). The rebuild scheme keeps
// the page table in DRAM but maintains a virtual→NVM-physical list at each
// checkpoint; the persistent scheme hosts the table in NVM and wraps every
// page-table store in a consistency mechanism.
package main

import (
	"fmt"
	"log"
	"time"

	"kindle/internal/core"
	"kindle/internal/gemos"
	"kindle/internal/mem"
	"kindle/internal/persist"
)

func run(scheme persist.Scheme, sizeMB uint64, interval time.Duration) float64 {
	f := core.NewDefault()
	mgr, err := f.EnablePersistence(scheme, interval)
	if err != nil {
		log.Fatal(err)
	}
	p, err := f.K.Spawn("seq")
	if err != nil {
		log.Fatal(err)
	}
	f.K.Switch(p)
	mgr.Start()

	size := sizeMB << 20
	start := f.M.Clock.Now()
	a, err := f.K.Mmap(p, 0, size, gemos.ProtRead|gemos.ProtWrite, gemos.MapNVM)
	if err != nil {
		log.Fatal(err)
	}
	for va := a; va < a+size; va += mem.PageSize {
		if _, err := f.M.Core.Access(va, true, 8); err != nil {
			log.Fatal(err)
		}
		f.K.Tick()
	}
	if err := f.K.Munmap(p, a, size); err != nil {
		log.Fatal(err)
	}
	return (f.M.Clock.Now() - start).Millis()
}

func main() {
	const interval = time.Millisecond // scaled-down checkpoint period
	fmt.Println("sequential alloc+access under periodic checkpointing")
	fmt.Printf("checkpoint interval: %v\n\n", interval)
	fmt.Println("Size    Persistent(ms)  Rebuild(ms)  Ratio")
	for _, sizeMB := range []uint64{4, 8, 16, 32} {
		p := run(persist.Persistent, sizeMB, interval)
		r := run(persist.Rebuild, sizeMB, interval)
		fmt.Printf("%3dMB   %14.2f  %11.2f  %5.1fx\n", sizeMB, p, r, r/p)
	}
	fmt.Println("\nThe rebuild scheme's checkpoint cost grows with the mapped")
	fmt.Println("footprint (virtual→physical list maintenance), so its overhead")
	fmt.Println("is superlinear in the allocation size — the paper's Fig. 4a.")
}
