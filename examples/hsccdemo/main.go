// HSCC demo: run YCSB with DRAM managed as an OS-driven cache for NVM,
// sweeping the fetch threshold — a miniature of the paper's Table V /
// Figure 6 study, showing the OS migration costs a user-level simulator
// cannot observe.
package main

import (
	"fmt"
	"log"
	"time"

	"kindle/internal/core"
	"kindle/internal/hscc"
	"kindle/internal/sim"
	"kindle/internal/workloads"
)

func run(threshold uint32, chargeOS bool) (ms float64, migrated, selCyc, copyCyc uint64) {
	cfg := workloads.DefaultYCSB()
	cfg.Ops = 400_000
	img, err := workloads.YCSB(cfg)
	if err != nil {
		log.Fatal(err)
	}
	f := core.NewDefault()
	p, rep, err := f.LaunchInit(img)
	if err != nil {
		log.Fatal(err)
	}
	hcfg := hscc.DefaultConfig()
	hcfg.FetchThreshold = threshold
	hcfg.ChargeOSTime = chargeOS
	hcfg.MigrationInterval = sim.FromDuration(2 * time.Millisecond)
	ctl, err := f.EnableHSCC(p, hcfg)
	if err != nil {
		log.Fatal(err)
	}
	ctl.Start()
	if err := rep.Run(); err != nil {
		log.Fatal(err)
	}
	ctl.Stop()
	return f.M.ElapsedMillis(),
		f.M.Stats.Get("hscc.pages_migrated"),
		f.M.Stats.Get("hscc.page_selection_cycles"),
		f.M.Stats.Get("hscc.page_copy_cycles")
}

func main() {
	fmt.Println("YCSB under HSCC (DRAM pool: 512 pages)")
	fmt.Println("threshold  migrated   OS-run(ms)  HW-only(ms)  normalized  select%  copy%")
	for _, th := range []uint32{5, 25, 50} {
		on, migrated, sel, cp := run(th, true)
		off, _, _, _ := run(th, false)
		selPct, cpPct := 0.0, 0.0
		if sel+cp > 0 {
			selPct = 100 * float64(sel) / float64(sel+cp)
			cpPct = 100 * float64(cp) / float64(sel+cp)
		}
		fmt.Printf("   Th-%-3d  %8d   %10.3f  %11.3f  %9.2fx  %6.1f%%  %5.1f%%\n",
			th, migrated, on, off, on/off, selPct, cpPct)
	}
	fmt.Println("\nHigher thresholds migrate fewer pages, shrinking the OS-side")
	fmt.Println("overhead; page copy dominates the OS migration time until the")
	fmt.Println("free and clean pools run dry and dirty copy-backs appear in the")
	fmt.Println("page-selection column — the paper's Table VI insight.")
}
