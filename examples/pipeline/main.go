// Pipeline: the full Kindle workflow of Figure 3 — the preparation
// component traces an application (Pin stand-in), captures its memory
// layout (/proc maps + SniP), generates the disk image and the gemOS
// template; the simulation component then boots the machine, launches init
// from the image and replays the application. Uses the multi-threaded YCSB
// variant so the SniP-captured per-thread stacks are visible.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"kindle/internal/core"
	"kindle/internal/prep"
)

func main() {
	dir, err := os.MkdirTemp("", "kindle-pipeline")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// ---- Preparation component ----
	d := &prep.Driver{OutDir: dir, Small: true}
	res, err := d.Run(prep.BenchYCSBMT)
	if err != nil {
		log.Fatal(err)
	}
	r, w := res.Image.Mix()
	fmt.Printf("preparation: traced %s — %d records, %.0f%%/%.0f%% r/w\n",
		res.Image.Benchmark, len(res.Image.Records), r, w)
	fmt.Println("\ncaptured layout (/proc maps + SniP per-thread stacks):")
	for _, line := range strings.Split(strings.TrimSpace(res.MapsText), "\n") {
		fmt.Println("  " + line)
	}
	fmt.Println("\ndisk image:   ", res.ImagePath)
	fmt.Println("template code:", res.TemplatePath)
	fmt.Println("\ngenerated gemOS template (head):")
	for i, line := range strings.Split(res.TemplateCode, "\n") {
		if i >= 12 {
			fmt.Println("  ...")
			break
		}
		fmt.Println("  " + line)
	}

	// ---- Simulation component ----
	img, err := prep.ReadImageFile(res.ImagePath)
	if err != nil {
		log.Fatal(err)
	}
	f := core.NewDefault()
	_, rep, err := f.LaunchInit(img)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulation: init launched with %d mmapped areas; replaying...\n",
		len(img.Areas))
	if err := rep.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done: %.3f ms simulated, %d TLB misses, %d LLC misses, %d NVM reads\n",
		f.M.ElapsedMillis(),
		f.M.Stats.Get("tlb.l2.miss"),
		f.M.Stats.Get("cache.llc.miss"),
		f.M.Stats.Get("nvm.read"))
}
