// SSP demo: run the YCSB workload inside a failure-atomic section under
// Shadow Sub-Paging, sweeping the consistency interval — a miniature of
// the paper's Figure 5 plus the extra statistics Kindle exposes
// (consolidation-thread work, lines flushed per interval).
package main

import (
	"fmt"
	"log"
	"time"

	"kindle/internal/core"
	"kindle/internal/sim"
	"kindle/internal/ssp"
	"kindle/internal/workloads"
)

func run(interval time.Duration) (ms float64, stats map[string]uint64) {
	cfg := workloads.DefaultYCSB() // paper-size store: enough pages to churn the TLB
	cfg.Ops = 150_000
	img, err := workloads.YCSB(cfg)
	if err != nil {
		log.Fatal(err)
	}
	f := core.NewDefault()
	var ctl *ssp.Controller
	if interval > 0 {
		c := ssp.Config{
			ConsistencyInterval:   sim.FromDuration(interval),
			ConsolidationInterval: sim.FromDuration(50 * time.Microsecond),
		}
		if ctl, err = f.EnableSSP(c); err != nil {
			log.Fatal(err)
		}
	}
	_, rep, err := f.LaunchInit(img)
	if err != nil {
		log.Fatal(err)
	}
	if ctl != nil {
		// checkpoint_start: demarcate the FASE and tell the hardware the
		// NVM range via MSRs.
		lo, hi := rep.NVMRange()
		ctl.Enable(lo, hi)
	}
	if err := rep.Run(); err != nil {
		log.Fatal(err)
	}
	if ctl != nil {
		ctl.Disable() // checkpoint_end
	}
	return f.M.ElapsedMillis(), map[string]uint64{
		"intervals":    f.M.Stats.Get("ssp.intervals"),
		"flushed":      f.M.Stats.Get("ssp.lines_flushed"),
		"consolidated": f.M.Stats.Get("ssp.pages_consolidated"),
	}
}

func main() {
	base, _ := run(0)
	fmt.Printf("no consistency:            %8.3f ms (baseline)\n\n", base)
	fmt.Println("interval   exec(ms)  normalized  intervals  lines-flushed  pages-consolidated")
	for _, iv := range []time.Duration{50 * time.Microsecond, 250 * time.Microsecond, 500 * time.Microsecond} {
		ms, st := run(iv)
		fmt.Printf("%8v  %8.3f  %9.2fx  %9d  %13d  %18d\n",
			iv, ms, ms/base, st["intervals"], st["flushed"], st["consolidated"])
	}
	fmt.Println("\nWider consistency intervals amortize the metadata writes and")
	fmt.Println("clwb flushes — the paper's Fig. 5 insight — while Kindle also")
	fmt.Println("exposes the consolidation-thread activity the original SSP")
	fmt.Println("paper left unevaluated.")
}
