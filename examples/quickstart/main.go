// Quickstart: boot a Kindle machine, allocate memory in DRAM and NVM with
// the extended mmap API (the paper's Listing 1), store to both, then crash
// the machine and recover the process from its NVM saved state.
package main

import (
	"fmt"
	"log"
	"time"

	"kindle/internal/core"
	"kindle/internal/gemos"
	"kindle/internal/persist"
)

func main() {
	// A full-size machine: 3 GB DDR4 + 2 GB PCM behind 32K/512K/2M caches
	// at 3 GHz (the paper's Table I).
	f := core.NewDefault()

	// Enable process persistence with the rebuild page-table scheme and a
	// 10 ms checkpoint interval.
	mgr, err := f.EnablePersistence(persist.Rebuild, 10*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}

	// Spawn a process — gemOS assigns it a saved-state slot in NVM.
	p, err := f.K.Spawn("quickstart")
	if err != nil {
		log.Fatal(err)
	}
	f.K.Switch(p)

	// The paper's Listing 1: one NVM allocation, one DRAM allocation.
	ptr1, err := f.K.Mmap(p, 0, 4096, gemos.ProtRead|gemos.ProtWrite, gemos.MapNVM)
	if err != nil {
		log.Fatal(err)
	}
	ptr2, err := f.K.Mmap(p, 0, 4096, gemos.ProtRead|gemos.ProtWrite, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mmap(MAP_NVM) -> %#x   mmap(0) -> %#x\n", ptr1, ptr2)

	// Store to both (demand paging allocates NVM and DRAM frames).
	if _, err := f.M.Core.Access(ptr1, true, 1); err != nil {
		log.Fatal(err)
	}
	if _, err := f.M.Core.Access(ptr2, true, 1); err != nil {
		log.Fatal(err)
	}
	// Put recognizable data in the NVM page (functional write).
	pa, _ := f.M.Core.VirtToPhys(ptr1)
	f.M.Ctrl.Write(pa, []byte("A"))
	fmt.Printf("stored 'A' to NVM page (pa %#x), 'B' to DRAM page\n", pa)

	// Take a checkpoint, then pull the plug.
	mgr.Checkpoint()
	fmt.Printf("checkpoint taken at t=%.3f ms; crashing machine...\n", f.M.ElapsedMillis())
	f.Crash()

	// Reboot + recovery: the process comes back from its saved state.
	procs, err := f.Recover(10 * time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	rp := procs[0]
	fmt.Printf("recovered: %v\n", rp)
	f.K.Switch(rp)

	// The NVM page survived with its data; the DRAM page is gone (it
	// refaults to zeroes on demand, as the paper's model assumes NVM-only
	// data consistency).
	rpa, ok := f.M.Core.VirtToPhys(ptr1)
	if !ok {
		log.Fatal("NVM mapping lost")
	}
	buf := make([]byte, 1)
	f.M.Ctrl.Read(rpa, buf)
	fmt.Printf("after recovery NVM page holds %q (same frame: %v)\n", buf, rpa == pa)
	if _, err := f.M.Core.Access(ptr2, false, 1); err != nil {
		log.Fatal(err)
	}
	fmt.Println("DRAM page refaulted on demand — quickstart complete")
}
