GO ?= go

.PHONY: all build test check fmt vet race bench benchsmoke

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-commit gate: formatting, vet, the full test suite under
# the race detector, and a one-iteration pass over every benchmark so the
# perf harness can't silently rot.
check: fmt vet race benchsmoke

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

benchsmoke:
	$(GO) test -bench . -benchtime 1x -run XXX ./...

# bench runs the microbenchmarks, then records the headline numbers
# (replay records/sec, suite wall-clock, GOMAXPROCS) in BENCH_replay.json
# for cross-PR comparison.
bench:
	$(GO) test -bench . -benchmem -run XXX ./internal/mem ./internal/obs ./internal/sim
	$(GO) test -run TestWriteBenchReport -bench-report BENCH_replay.json .
