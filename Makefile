GO ?= go

.PHONY: all build test check fmt vet race bench

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-commit gate: formatting, vet, and the full test suite
# under the race detector.
check: fmt vet race

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem -run XXX ./internal/mem ./internal/obs ./internal/sim
