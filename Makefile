GO ?= go

.PHONY: all build test check fmt vet race bench benchsmoke crashsweep fuzzsmoke

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-commit gate: formatting, vet, the full test suite under
# the race detector, a one-iteration pass over every benchmark so the perf
# harness can't silently rot, a bounded commit-point crash sweep, and a
# short fuzz of the trace decoders.
check: fmt vet race benchsmoke crashsweep fuzzsmoke

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

benchsmoke:
	$(GO) test -bench . -benchtime 1x -run XXX ./...

# crashsweep replays the workload with a power failure injected at NVM
# commit-point granularity (bounded scale; see EXPERIMENTS.md). -check fails
# the build if any injection point violates the recovery invariants.
crashsweep:
	$(GO) run ./cmd/kindle-bench -experiment crash-sweep -scale 0.0625 -check

# fuzzsmoke runs the checked-in corpus plus 10 seconds of new coverage over
# the v1/v2 binary trace decoders (see internal/trace/fuzz_test.go).
fuzzsmoke:
	$(GO) test -run XXX -fuzz FuzzDecode -fuzztime 10s ./internal/trace

# bench runs the microbenchmarks, then records the headline numbers
# (replay records/sec, suite wall-clock, GOMAXPROCS) in BENCH_replay.json
# for cross-PR comparison.
bench:
	$(GO) test -bench . -benchmem -run XXX ./internal/mem ./internal/obs ./internal/sim
	$(GO) test -run TestWriteBenchReport -bench-report BENCH_replay.json .
