GO ?= go

.PHONY: all build test check fmt vet lint race bench benchsmoke crashsweep fuzzsmoke allocguard monitorsmoke shardsmoke eventsmoke trafficsmoke forksmoke nightly profile

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-commit gate: formatting, vet, the full test suite under
# the race detector, the zero-allocation guards (which the race build must
# skip, hence the separate non-race run), a one-iteration pass over every
# benchmark so the perf harness can't silently rot, a bounded commit-point
# crash sweep, a short fuzz of the trace decoders, the live-monitor smoke
# (real kindle binary scraped over HTTP mid-run), the sharded-replay
# smoke (real binary, -shards 1 vs 4 stats dumps diffed), and the
# event-clock smoke (real binary, stepped vs -event-clock dumps diffed),
# the traffic smoke (real binary, a seeded multi-tenant spec run twice
# stepped and once with -event-clock, all three dumps diffed), and the
# snapshot/fork smoke (real binary, -snapshot-out then two -snapshot-in
# resumes, all dumps diffed against a cold run).
check: fmt vet race allocguard benchsmoke crashsweep fuzzsmoke monitorsmoke shardsmoke eventsmoke trafficsmoke forksmoke

# allocguard pins the replay fast path's zero-allocation steady state (see
# allocguard_test.go); it needs a non-race build because race instrumentation
# changes allocation counts.
allocguard:
	$(GO) test -run ZeroAlloc .

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

benchsmoke:
	$(GO) test -bench . -benchtime 1x -run XXX ./...

# crashsweep replays the workload with a power failure injected at NVM
# commit-point granularity (bounded scale; see EXPERIMENTS.md). -check fails
# the build if any injection point violates the recovery invariants.
crashsweep:
	$(GO) run ./cmd/kindle-bench -experiment crash-sweep -scale 0.0625 -check

# fuzzsmoke runs the checked-in corpus plus 10 seconds of new coverage over
# the v1/v2 binary trace decoders (see internal/trace/fuzz_test.go).
fuzzsmoke:
	$(GO) test -run XXX -fuzz FuzzDecode -fuzztime 10s ./internal/trace

# monitorsmoke builds the real kindle binary, runs a tiny replay with
# -monitor, and asserts over HTTP that /metrics parses as Prometheus text
# exposition and /progress reaches 100% (see monitor_smoke_test.go).
monitorsmoke:
	$(GO) test -run TestMonitorSmoke .

# shardsmoke builds the real kindle binary, writes a tiny v2 image, and
# requires `-shards 1` and `-shards 4` to produce byte-identical stats
# dumps — the sharded determinism contract, end to end (see
# shard_smoke_test.go).
shardsmoke:
	$(GO) test -run TestShardSmoke .

# eventsmoke builds the real kindle binary and replays the same image with
# checkpoints and an idle tail, stepped and with -event-clock; the two
# stats dumps must be byte-identical — the event-driven clock's identity
# contract, end to end (see event_smoke_test.go).
eventsmoke:
	$(GO) test -run TestEventSmoke .

# trafficsmoke builds the real kindle binary and runs the same seeded
# multi-tenant traffic spec three times — twice stepped, once with
# -event-clock — requiring byte-identical stats dumps: the traffic engine's
# determinism contract, end to end (see traffic_smoke_test.go).
trafficsmoke:
	$(GO) test -run TestTrafficSmoke .

# forksmoke builds the real kindle binary and requires a cold run, a run
# that freezes a mid-replay snapshot with -snapshot-out (and still
# completes), and two -snapshot-in resumes of that snapshot to produce
# byte-identical stats dumps — the copy-on-write snapshot contract, end to
# end (see fork_smoke_test.go).
forksmoke:
	$(GO) test -run TestForkSmoke .

# lint runs staticcheck when it is installed (CI installs a pinned version;
# see .github/workflows/ci.yml) and falls back to go vet locally so the
# target never requires a network fetch.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; staticcheck ./...; \
	else \
		echo "staticcheck not installed; falling back to go vet"; \
		$(GO) vet ./...; \
	fi

# nightly is the scheduled deep gate (.github/workflows/nightly.yml): a
# larger bounded crash sweep than the push gate's, plus the KINDLE_NIGHTLY
# identity suite (long-horizon lifecycle and large traffic runs, stepped vs
# event-driven, byte-diffed). KINDLE_NIGHTLY_DIR collects divergence
# artifacts for upload.
nightly:
	$(GO) run ./cmd/kindle-bench -experiment crash-sweep -scale 0.25 -check
	KINDLE_NIGHTLY=1 $(GO) test -run TestNightly -timeout 45m -v ./internal/bench

# profile records CPU and allocation profiles for both replay benchmarks
# under profiles/ (gitignored). See "Recipe: profiling the replay engine"
# in EXPERIMENTS.md for how to read them.
profile:
	mkdir -p profiles
	$(GO) test -run XXX -bench '^BenchmarkReplayThroughput$$' -benchtime 2s \
		-cpuprofile profiles/replay_cpu.prof -memprofile profiles/replay_mem.prof -o profiles/kindle.test .
	$(GO) test -run XXX -bench '^BenchmarkStreamReplayThroughput$$' -benchtime 2s \
		-cpuprofile profiles/stream_cpu.prof -memprofile profiles/stream_mem.prof -o profiles/kindle.test .
	@echo "wrote profiles/{replay,stream}_{cpu,mem}.prof; try:"
	@echo "  go tool pprof -top -nodecount 20 profiles/kindle.test profiles/replay_cpu.prof"

# bench runs the microbenchmarks, then records the headline numbers
# (replay records/sec, suite wall-clock, GOMAXPROCS) in BENCH_replay.json
# for cross-PR comparison.
bench:
	$(GO) test -bench . -benchmem -run XXX ./internal/mem ./internal/obs ./internal/sim
	$(GO) test -run TestWriteBenchReport -bench-report BENCH_replay.json .
