package kindle_test

// Monitor smoke test (`make monitorsmoke`, part of `make check`): build the
// real kindle binary, run a tiny replay with -monitor, and drive the live
// endpoint over HTTP — /metrics must parse as Prometheus text exposition
// and /progress must reach 100%. The child is a separate, non-instrumented
// process, so this also exercises live mid-run scraping (benign-race
// counter sampling) in a way in-process race-instrumented tests must not.

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"kindle/internal/obs/monitor"
)

func TestMonitorSmoke(t *testing.T) {
	gobin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	bin := filepath.Join(t.TempDir(), "kindle")
	if out, err := exec.Command(gobin, "build", "-o", bin, "./cmd/kindle").CombinedOutput(); err != nil {
		t.Fatalf("building cmd/kindle: %v\n%s", err, out)
	}

	// -monitor-hold keeps the endpoint up after the replay finishes so the
	// test can observe the terminal /progress state without racing the
	// process exit; the child is killed as soon as we are done.
	cmd := exec.Command(bin,
		"-benchmark", "Ycsb_mem", "-small",
		"-stats-interval", "500us",
		"-monitor", "127.0.0.1:0",
		"-monitor-hold", "60s")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stdout = nil
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	// The monitor announces its bound address on stderr.
	addr := ""
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), "monitor: listening on http://"); ok {
			addr = rest
			break
		}
	}
	if addr == "" {
		t.Fatalf("monitor address never announced on stderr (scan err %v)", sc.Err())
	}
	// Keep draining stderr so the child never blocks on a full pipe.
	go func() {
		for sc.Scan() {
		}
	}()

	// /progress must reach 100% (done, fraction 1) once the replay ends.
	type progress struct {
		RecordsReplayed int64   `json:"records_replayed"`
		RecordsTotal    int64   `json:"records_total"`
		Fraction        float64 `json:"fraction"`
		Done            bool    `json:"done"`
	}
	var p progress
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/progress")
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&p)
			resp.Body.Close()
		}
		if err == nil && p.Done && p.Fraction == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("progress never reached 100%%: %+v (err %v)", p, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if p.RecordsTotal > 0 && p.RecordsReplayed != p.RecordsTotal {
		t.Fatalf("done run consumed %d of %d records", p.RecordsReplayed, p.RecordsTotal)
	}

	// /metrics must be valid Prometheus text exposition carrying the
	// simulator's stats.
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("metrics Content-Type = %q", ct)
	}
	var body strings.Builder
	samples, err := monitor.ValidateExposition(io.TeeReader(resp.Body, &body))
	if err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	if samples < 20 {
		t.Fatalf("only %d samples exposed", samples)
	}
	for _, want := range []string{"kindle_cpu_load", "kindle_nvm_write", "kindle_process_uptime_seconds"} {
		if !strings.Contains(body.String(), want) {
			t.Fatalf("metrics missing %q", want)
		}
	}

	// pprof rides on the same mux.
	pp, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index = %d", pp.StatusCode)
	}
}
