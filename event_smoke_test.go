package kindle_test

// Event-clock smoke test (`make eventsmoke`, part of `make check`): build
// the real kindle binary, write a tiny v2 image, replay it with periodic
// checkpoints and a long idle tail — once stepped, once with -event-clock —
// and require the two stats dumps to be byte-identical. This pins the
// event-driven clock's identity gate end to end, through flag parsing, the
// persistence timers and the idle run loop, in the same out-of-process
// style as the shard smoke.

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"kindle/internal/trace"
	"kindle/internal/workloads"
)

func TestEventSmoke(t *testing.T) {
	gobin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "kindle")
	if out, err := exec.Command(gobin, "build", "-o", bin, "./cmd/kindle").CombinedOutput(); err != nil {
		t.Fatalf("building cmd/kindle: %v\n%s", err, out)
	}

	cfg := workloads.SmallYCSB()
	cfg.Ops = 20_000
	img, err := workloads.YCSB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	image := filepath.Join(dir, "ycsb.ktrc")
	f, err := os.Create(image)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.EncodeV2(f, img, trace.StreamOptions{ChunkRecords: 1024}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	dumps := map[bool][]byte{}
	for _, event := range []bool{false, true} {
		name := "stepped"
		if event {
			name = "event"
		}
		statsOut := filepath.Join(dir, "stats."+name)
		args := []string{
			"-image", image,
			"-persist", "rebuild",
			"-interval", "300us",
			"-idle-after", "30ms",
			"-idle-tick", "2us",
			"-stats-out", statsOut,
		}
		if event {
			args = append(args, "-event-clock")
		}
		if out, err := exec.Command(bin, args...).CombinedOutput(); err != nil {
			t.Fatalf("kindle (%s): %v\n%s", name, err, out)
		}
		data, err := os.ReadFile(statsOut)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			t.Fatalf("%s run wrote an empty stats file", name)
		}
		dumps[event] = data
	}
	if !bytes.Equal(dumps[false], dumps[true]) {
		sl := bytes.Split(dumps[false], []byte("\n"))
		el := bytes.Split(dumps[true], []byte("\n"))
		for i := 0; i < len(sl) && i < len(el); i++ {
			if !bytes.Equal(sl[i], el[i]) {
				t.Fatalf("stats dumps diverge at line %d:\n stepped: %s\n event:   %s", i+1, sl[i], el[i])
			}
		}
		t.Fatalf("stats dumps differ in length: %d vs %d lines", len(sl), len(el))
	}
}
