package kindle_test

import (
	"testing"
	"time"

	"kindle/internal/core"
	"kindle/internal/persist"
	"kindle/internal/trace"
	"kindle/internal/workloads"
)

// forkBenchWarmup is the warm-prefix length both warmup benchmarks pay: a
// multiple of the replay tick grain (32), most of the 50k-record image, so
// the simulated warmup dominates the boot cost like a real grid cell's
// does.
const forkBenchWarmup = 32_000

func forkBenchImage(b *testing.B) *trace.Image {
	cfg := workloads.DefaultYCSB()
	cfg.Ops = 50_000
	img, err := workloads.YCSB(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return img
}

// BenchmarkColdGridWarmup simulates one bench-grid cell's warmup from
// scratch: boot, enable persistence, launch the replay and simulate the
// warm prefix. This is the per-cell cost a cold grid pays.
func BenchmarkColdGridWarmup(b *testing.B) {
	img := forkBenchImage(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := core.NewDefault()
		mgr, err := f.EnablePersistence(persist.Rebuild, 10*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		mgr.Start()
		_, rep, err := f.LaunchInit(img)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := rep.Step(forkBenchWarmup); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForkGridWarmup reaches the same warmed state by forking a
// copy-on-write snapshot captured once: resume the machine, kernel and
// manager and fast-forward the decoder past the prefix without simulating
// it. ns/op against BenchmarkColdGridWarmup's is the fork_speedup recorded
// in BENCH_replay.json; allocs/op is fork_allocs_per_fork.
func BenchmarkForkGridWarmup(b *testing.B) {
	img := forkBenchImage(b)
	f := core.NewDefault()
	mgr, err := f.EnablePersistence(persist.Rebuild, 10*time.Millisecond)
	if err != nil {
		b.Fatal(err)
	}
	mgr.Start()
	_, rep, err := f.LaunchInit(img)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := rep.Step(forkBenchWarmup); err != nil {
		b.Fatal(err)
	}
	snap := f.Snapshot(rep)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cf, crep, err := core.RunFromSnapshot(snap, trace.NewImageSource(img))
		if err != nil {
			b.Fatal(err)
		}
		if crep.Consumed() != forkBenchWarmup || cf.M.Clock.Now() == 0 {
			b.Fatalf("fork resumed at record %d, want %d", crep.Consumed(), forkBenchWarmup)
		}
	}
}
