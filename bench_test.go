// Package kindle's root benchmark harness: one testing.B benchmark per
// table and figure of the paper's evaluation. Each benchmark runs the
// corresponding experiment at a reduced scale (so `go test -bench=.`
// finishes in minutes) and reports the headline quantity of that artifact
// as a custom metric alongside host-side ns/op. For paper-scale runs use
// `go run ./cmd/kindle-bench -scale 1.0`.
package kindle_test

import (
	"testing"

	"kindle/internal/bench"
)

// benchScale keeps each experiment's testing.B iteration around a second.
var benchScale = bench.Options{Scale: 1.0 / 32}

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := bench.TableI()
		if err := res.CheckShape(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableII(b *testing.B) {
	// Table II needs a long trace window for stationary mixes.
	opt := bench.Options{Scale: 1.0 / 8}
	for i := 0; i < b.N; i++ {
		res, err := bench.TableII(opt)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.CheckShape(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].ReadPct, "gapbs_read_%")
	}
}

func BenchmarkFig4a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig4a(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.CheckShape(); err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.RebuildMs/last.PersistentMs, "rebuild/persistent_512MB")
	}
}

func BenchmarkFig4b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig4b(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.CheckShape(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].PersistentMs/res.Rows[0].RebuildMs, "persistent/rebuild_1GB")
	}
}

func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.TableIII(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.CheckShape(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].RebuildMs/res.Rows[0].PersistentMs, "rebuild/persistent_64MB")
	}
}

func BenchmarkTableIV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.TableIV(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.CheckShape(); err != nil {
			b.Fatal(err)
		}
		// Headline: the rebuild reduction from 10ms to 100ms interval.
		b.ReportMetric(res.Rows[0].RebuildMs/res.Rows[1].RebuildMs, "rebuild_10ms/100ms")
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig5(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.CheckShape(); err != nil {
			b.Fatal(err)
		}
		// Headline: average overhead reduction 1ms -> 10ms.
		var red float64
		for _, row := range res.Rows {
			red += (row.Norm[res.Intervals[0]] - 1) / (row.Norm[res.Intervals[2]] - 1)
		}
		b.ReportMetric(red/float64(len(res.Rows)), "overhead_reduction_1ms/10ms")
	}
}

func BenchmarkTableV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tv, _, _, err := bench.HSCCAll(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if err := tv.CheckShape(); err != nil {
			b.Fatal(err)
		}
		y := tv.Migrated["Ycsb_mem"]
		if y[50] > 0 {
			b.ReportMetric(float64(y[5])/float64(y[50]), "ycsb_th5/th50")
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, f6, _, err := bench.HSCCAll(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if err := f6.CheckShape(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f6.Norm["Ycsb_mem"][5], "ycsb_norm_th5")
	}
}

func BenchmarkTableVI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _, t6, err := bench.HSCCAll(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if err := t6.CheckShape(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t6.CopyPct["Gapbs_pr"][5], "gapbs_copy_%_th5")
	}
}
