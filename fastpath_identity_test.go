package kindle_test

import (
	"bytes"
	"testing"

	"kindle/internal/core"
	"kindle/internal/machine"
	"kindle/internal/workloads"
)

// TestFastPathsStatsIdentity is the end-to-end contract behind every fast
// path in this PR: replaying a full YCSB workload with the fast paths on
// and with Config.DisableFastPaths must finish at the same simulated clock
// and produce byte-identical gem5-format stats dumps. The fast paths are
// host-side shortcuts only — no simulated outcome may depend on them.
func TestFastPathsStatsIdentity(t *testing.T) {
	cfg := workloads.DefaultYCSB()
	cfg.Ops = 50_000
	img, err := workloads.YCSB(cfg)
	if err != nil {
		t.Fatal(err)
	}

	run := func(disable bool) (clock uint64, dump []byte) {
		mcfg := machine.TestConfig()
		mcfg.DisableFastPaths = disable
		f := core.New(mcfg)
		_, rep, err := f.LaunchInit(img)
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.Run(); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := f.M.Stats.WriteStatsFile(&buf); err != nil {
			t.Fatal(err)
		}
		return uint64(f.M.Clock.Now()), buf.Bytes()
	}

	fastClock, fastDump := run(false)
	slowClock, slowDump := run(true)
	if fastClock != slowClock {
		t.Fatalf("final clock %d with fast paths, %d without", fastClock, slowClock)
	}
	if !bytes.Equal(fastDump, slowDump) {
		// Find the first differing line so the failure names the stat.
		fl := bytes.Split(fastDump, []byte("\n"))
		sl := bytes.Split(slowDump, []byte("\n"))
		for i := 0; i < len(fl) && i < len(sl); i++ {
			if !bytes.Equal(fl[i], sl[i]) {
				t.Fatalf("stats dumps diverge at line %d:\n fast: %s\n slow: %s", i+1, fl[i], sl[i])
			}
		}
		t.Fatalf("stats dumps differ in length: %d vs %d lines", len(fl), len(sl))
	}
}
