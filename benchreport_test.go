package kindle_test

import (
	"encoding/json"
	"flag"
	"os"
	"runtime"
	"testing"
	"time"

	"kindle/internal/bench"
)

// benchReportPath enables TestWriteBenchReport: `make bench` passes
// -bench-report BENCH_replay.json to record the machine-readable
// performance snapshot compared across PRs.
var benchReportPath = flag.String("bench-report", "", "write the replay/suite benchmark report JSON to this path")

// benchReport is the schema of BENCH_replay.json.
type benchReport struct {
	// RecordsPerSec is BenchmarkReplayThroughput's custom metric: trace
	// records simulated per host second through the full access path.
	RecordsPerSec float64 `json:"records_per_sec"`
	// SuiteWallClockSec is the wall-clock time of one full RunAll at
	// SuiteScale with the default worker pool.
	SuiteWallClockSec float64 `json:"suite_wall_clock_sec"`
	SuiteScale        float64 `json:"suite_scale"`
	GOMAXPROCS        int     `json:"gomaxprocs"`
}

// TestWriteBenchReport measures replay throughput and suite wall-clock and
// writes them as JSON. Skipped unless -bench-report is set, so regular
// `go test` runs don't pay the measurement.
func TestWriteBenchReport(t *testing.T) {
	if *benchReportPath == "" {
		t.Skip("enabled by -bench-report <path> (see `make bench`)")
	}
	rep := benchReport{SuiteScale: 1.0 / 16, GOMAXPROCS: runtime.GOMAXPROCS(0)}

	br := testing.Benchmark(BenchmarkReplayThroughput)
	rep.RecordsPerSec = br.Extra["records/sec"]

	start := time.Now()
	if _, err := bench.RunAll(bench.Options{Scale: rep.SuiteScale}, nil); err != nil {
		t.Fatal(err)
	}
	rep.SuiteWallClockSec = time.Since(start).Seconds()

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*benchReportPath, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %.0f records/sec, suite %.1fs at scale %g on %d procs",
		*benchReportPath, rep.RecordsPerSec, rep.SuiteWallClockSec, rep.SuiteScale, rep.GOMAXPROCS)
}
