package kindle_test

import (
	"flag"
	"runtime"
	"testing"
	"time"

	"kindle/internal/bench"
)

// benchReportPath enables TestWriteBenchReport: `make bench` passes
// -bench-report BENCH_replay.json to record the machine-readable
// performance snapshot compared across PRs (see bench.Report and
// cmd/kindle-benchdiff).
var benchReportPath = flag.String("bench-report", "", "write the replay/suite benchmark report JSON to this path")

// TestWriteBenchReport measures replay throughput (materialized and
// streamed) and suite wall-clock and writes them as JSON. Skipped unless
// -bench-report is set, so regular `go test` runs don't pay the
// measurement.
func TestWriteBenchReport(t *testing.T) {
	if *benchReportPath == "" {
		t.Skip("enabled by -bench-report <path> (see `make bench`)")
	}
	rep := bench.Report{
		SuiteScale: 1.0 / 16,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		// Environment knobs behind the stream/sharded metrics: benchdiff
		// refuses comparisons across differing values without
		// -normalize-env, like gomaxprocs.
		Shards:        benchShards,
		DecodeWorkers: runtime.GOMAXPROCS(0),
	}

	br := testing.Benchmark(BenchmarkReplayThroughput)
	rep.RecordsPerSec = br.Extra["records/sec"]
	bs := testing.Benchmark(BenchmarkStreamReplayThroughput)
	rep.StreamRecordsPerSec = bs.Extra["records/sec"]
	bh := testing.Benchmark(BenchmarkShardedReplayThroughput)
	rep.ShardedRecordsPerSec = bh.Extra["records/sec"]

	// Idle-skip win of the event-driven clock on the checkpoint-lifecycle
	// workload: stepped ns/op over event-driven ns/op. Informational (the
	// dumps are identity-gated; only host time differs), so benchdiff never
	// gates on it.
	stepped := testing.Benchmark(BenchmarkSteppedClockLongHorizon)
	event := testing.Benchmark(BenchmarkEventClockLongHorizon)
	if ns := event.NsPerOp(); ns > 0 {
		rep.EventClockSpeedup = float64(stepped.NsPerOp()) / float64(ns)
	}

	// Warm-fork win: cold grid-cell warmup ns/op over copy-on-write
	// fork+resume ns/op, plus the fork's allocation count. Informational
	// (fork and cold boot are identity-gated; only host time differs).
	cold := testing.Benchmark(BenchmarkColdGridWarmup)
	forked := testing.Benchmark(BenchmarkForkGridWarmup)
	if ns := forked.NsPerOp(); ns > 0 {
		rep.ForkSpeedup = float64(cold.NsPerOp()) / float64(ns)
	}
	rep.ForkAllocsPerFork = uint64(forked.AllocsPerOp())

	// The suite runs with warm-forked grid cells; Fork records that as an
	// environment knob so benchdiff refuses mixed-fork comparisons.
	rep.Fork = true
	start := time.Now()
	if _, err := bench.RunAll(bench.Options{Scale: rep.SuiteScale, WarmFork: true}, nil); err != nil {
		t.Fatal(err)
	}
	rep.SuiteWallClockSec = time.Since(start).Seconds()

	if err := rep.WriteFile(*benchReportPath); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %.0f records/sec (stream %.0f at %d workers, sharded %.0f at %d shards), event-clock speedup %.2fx, fork speedup %.2fx (%d allocs/fork), suite %.1fs at scale %g on %d procs",
		*benchReportPath, rep.RecordsPerSec, rep.StreamRecordsPerSec, rep.DecodeWorkers,
		rep.ShardedRecordsPerSec, rep.Shards, rep.EventClockSpeedup,
		rep.ForkSpeedup, rep.ForkAllocsPerFork, rep.SuiteWallClockSec,
		rep.SuiteScale, rep.GOMAXPROCS)
}
