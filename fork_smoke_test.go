package kindle_test

// Snapshot/fork smoke test (`make forksmoke`, part of `make check`): build
// the real kindle binary, write a tiny v2 image, run it cold, run it again
// with -snapshot-out (freezing mid-replay, then finishing), and resume the
// snapshot twice with -snapshot-in. All four stats dumps must be
// byte-identical: the snapshotting run is unperturbed by the capture
// (copy-on-write), and each forked resume reproduces the cold trajectory
// exactly. This pins the snapshot contract end to end — flag parsing, gob
// save/load, frame-store image round-trip, event re-arming and decoder
// fast-forward.

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"kindle/internal/trace"
	"kindle/internal/workloads"
)

func TestForkSmoke(t *testing.T) {
	gobin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "kindle")
	if out, err := exec.Command(gobin, "build", "-o", bin, "./cmd/kindle").CombinedOutput(); err != nil {
		t.Fatalf("building cmd/kindle: %v\n%s", err, out)
	}

	cfg := workloads.SmallYCSB()
	cfg.Ops = 20_000
	img, err := workloads.YCSB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	image := filepath.Join(dir, "ycsb.ktrc")
	f, err := os.Create(image)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.EncodeV2(f, img, trace.StreamOptions{ChunkRecords: 1024}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	run := func(name string, args ...string) []byte {
		t.Helper()
		statsOut := filepath.Join(dir, "stats."+name)
		cmd := exec.Command(bin, append(args,
			"-image", image,
			"-persist", "rebuild",
			"-stats-out", statsOut)...)
		if name == "resume1" || name == "resume2" {
			// -snapshot-in restores the captured persistence state itself.
			cmd = exec.Command(bin, append(args,
				"-image", image,
				"-stats-out", statsOut)...)
		}
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("kindle (%s): %v\n%s", name, err, out)
		}
		data, err := os.ReadFile(statsOut)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			t.Fatalf("%s wrote an empty stats file", name)
		}
		return data
	}

	snap := filepath.Join(dir, "warm.snap")
	cold := run("cold")
	writer := run("writer", "-snapshot-out", snap, "-snapshot-at", "8000")
	resume1 := run("resume1", "-snapshot-in", snap)
	resume2 := run("resume2", "-snapshot-in", snap)

	if !bytes.Equal(cold, writer) {
		t.Fatalf("taking a snapshot perturbed the run:\n--- cold ---\n%s\n--- with -snapshot-out ---\n%s", cold, writer)
	}
	if !bytes.Equal(cold, resume1) {
		t.Fatalf("resumed run differs from cold run:\n--- cold ---\n%s\n--- resumed ---\n%s", cold, resume1)
	}
	if !bytes.Equal(resume1, resume2) {
		t.Fatal("two resumes of the same snapshot differ")
	}
}
