//go:build race

package kindle_test

// raceEnabled reports whether the race detector instruments this build; the
// allocation guards skip under it because instrumentation changes (and
// inflates) allocation counts.
const raceEnabled = true
