package kindle_test

// Sharded-replay smoke test (`make shardsmoke`, part of `make check`):
// build the real kindle binary, write a tiny v2 image, replay it with
// -shards 1 and -shards 4, and require the two stats dumps to be
// byte-identical. This pins the sharded determinism contract end to end —
// through flag parsing, the chunk index scan, the worker fan-out and the
// stats merge — in the same out-of-process style as the monitor smoke.

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"

	"kindle/internal/trace"
	"kindle/internal/workloads"
)

func TestShardSmoke(t *testing.T) {
	gobin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "kindle")
	if out, err := exec.Command(gobin, "build", "-o", bin, "./cmd/kindle").CombinedOutput(); err != nil {
		t.Fatalf("building cmd/kindle: %v\n%s", err, out)
	}

	// A tiny image with deliberately small chunks, so even this trace
	// splits into enough segments for 4 shards to matter.
	cfg := workloads.SmallYCSB()
	cfg.Ops = 20_000
	img, err := workloads.YCSB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	image := filepath.Join(dir, "ycsb.ktrc")
	f, err := os.Create(image)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.EncodeV2(f, img, trace.StreamOptions{ChunkRecords: 1024}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	dumps := map[int][]byte{}
	for _, shards := range []int{1, 4} {
		statsOut := filepath.Join(dir, "stats."+strconv.Itoa(shards))
		cmd := exec.Command(bin,
			"-image", image,
			"-shards", strconv.Itoa(shards),
			"-stats-out", statsOut)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("kindle -shards %d: %v\n%s", shards, err, out)
		}
		data, err := os.ReadFile(statsOut)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			t.Fatalf("-shards %d wrote an empty stats file", shards)
		}
		dumps[shards] = data
	}
	if !bytes.Equal(dumps[1], dumps[4]) {
		t.Fatalf("stats dumps differ between -shards 1 and -shards 4:\n--- shards=1 ---\n%s\n--- shards=4 ---\n%s",
			dumps[1], dumps[4])
	}
}
