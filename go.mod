module kindle

go 1.22
