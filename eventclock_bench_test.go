package kindle_test

import (
	"testing"

	"kindle/internal/bench"
)

// runLongHorizonBench measures the checkpoint/crash/recovery lifecycle
// workload (bench.RunLongHorizon defaults: six work rounds separated by
// 50 ms idle windows, a 5 ms checkpoint interval and a mid-run power
// failure) with one of the two clock engines. The workload is ~99% idle
// simulated time, so the stepped engine spends nearly all its host cycles
// visiting empty 250 ns boundaries — the case the event-driven clock
// skips. The two benchmarks' ns/op ratio is the idle-skip win recorded as
// event_clock_speedup in BENCH_replay.json.
func runLongHorizonBench(b *testing.B, eventDriven bool) {
	cfg := bench.LongHorizonConfig{EventDriven: eventDriven, CrashAtPhase: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := bench.RunLongHorizon(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Crashes != 1 || res.Checkpoints == 0 {
			b.Fatalf("lifecycle ran %d crashes, %d checkpoints", res.Crashes, res.Checkpoints)
		}
	}
}

// BenchmarkEventClockLongHorizon: the lifecycle with the event-driven
// clock, jumping straight between due timer boundaries through the idle
// windows.
func BenchmarkEventClockLongHorizon(b *testing.B) { runLongHorizonBench(b, true) }

// BenchmarkSteppedClockLongHorizon: the same lifecycle stepped one cycle
// group at a time — the baseline the event-driven engine is measured
// against. Stats dumps are byte-identical between the two (see
// TestLongHorizonEventClockIdentity).
func BenchmarkSteppedClockLongHorizon(b *testing.B) { runLongHorizonBench(b, false) }
