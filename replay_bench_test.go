package kindle_test

import (
	"bytes"
	"testing"

	"kindle/internal/core"
	"kindle/internal/trace"
	"kindle/internal/workloads"
)

// BenchmarkReplayThroughput is the headline simulator-speed benchmark: how
// many trace records per second the full access path (TLB → page table →
// caches → memory, with the gemOS kernel ticking) replays on the host. The
// custom records/sec metric is the number to compare across PRs; see
// `make bench`.
func BenchmarkReplayThroughput(b *testing.B) {
	cfg := workloads.DefaultYCSB()
	cfg.Ops = 100_000
	img, err := workloads.YCSB(cfg)
	if err != nil {
		b.Fatal(err)
	}
	records := len(img.Records)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := core.NewDefault()
		_, rep, err := f.LaunchInit(img)
		if err != nil {
			b.Fatal(err)
		}
		if err := rep.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/sec")
}

// BenchmarkStreamReplayThroughput replays the same workload through the
// chunked v2 format: the image is decoded chunk-by-chunk with read-ahead
// while the simulator replays, holding at most two chunks in memory. The
// records/sec metric is directly comparable to BenchmarkReplayThroughput's.
func BenchmarkStreamReplayThroughput(b *testing.B) {
	cfg := workloads.DefaultYCSB()
	cfg.Ops = 100_000
	img, err := workloads.YCSB(cfg)
	if err != nil {
		b.Fatal(err)
	}
	records := len(img.Records)
	var buf bytes.Buffer
	if err := trace.EncodeV2(&buf, img, trace.StreamOptions{}); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, err := trace.OpenStream(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		f := core.NewDefault()
		_, rep, err := f.LaunchStream(src)
		if err != nil {
			b.Fatal(err)
		}
		if err := rep.Run(); err != nil {
			b.Fatal(err)
		}
		src.Close()
	}
	b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/sec")
}
