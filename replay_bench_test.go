package kindle_test

import (
	"bytes"
	"io"
	"testing"

	"kindle/internal/core"
	"kindle/internal/trace"
	"kindle/internal/workloads"
)

// BenchmarkReplayThroughput is the headline simulator-speed benchmark: how
// many trace records per second the full access path (TLB → page table →
// caches → memory, with the gemOS kernel ticking) replays on the host. The
// custom records/sec metric is the number to compare across PRs; see
// `make bench`.
func BenchmarkReplayThroughput(b *testing.B) {
	cfg := workloads.DefaultYCSB()
	cfg.Ops = 100_000
	img, err := workloads.YCSB(cfg)
	if err != nil {
		b.Fatal(err)
	}
	records := len(img.Records)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := core.NewDefault()
		_, rep, err := f.LaunchInit(img)
		if err != nil {
			b.Fatal(err)
		}
		if err := rep.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/sec")
}

// benchShards is the shard count BenchmarkShardedReplayThroughput measures
// at; `make bench` records it in the report so benchdiff can refuse
// cross-shard-count comparisons.
const benchShards = 4

// BenchmarkShardedReplayThroughput replays the same workload through
// core.ReplaySharded at benchShards shards: the chunk index is partitioned
// into fixed segments, each replayed on a cold independent machine. The
// records/sec metric measures aggregate sharded throughput; it is NOT
// comparable to the end-to-end benchmarks above (cold-start physics per
// segment), only to itself across PRs.
func BenchmarkShardedReplayThroughput(b *testing.B) {
	cfg := workloads.DefaultYCSB()
	cfg.Ops = 100_000
	img, err := workloads.YCSB(cfg)
	if err != nil {
		b.Fatal(err)
	}
	records := len(img.Records)
	var buf bytes.Buffer
	// Small chunks so the trace splits into enough segments to keep
	// benchShards workers busy.
	if err := trace.EncodeV2(&buf, img, trace.StreamOptions{ChunkRecords: 4096}); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.ReplaySharded(func() (io.ReadSeeker, error) {
			return bytes.NewReader(data), nil
		}, core.ShardedOptions{Shards: benchShards})
		if err != nil {
			b.Fatal(err)
		}
		if res.Records != records {
			b.Fatalf("replayed %d records, want %d", res.Records, records)
		}
	}
	b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/sec")
}

// BenchmarkStreamReplayThroughput replays the same workload through the
// chunked v2 format: the image is decoded chunk-by-chunk with read-ahead
// while the simulator replays, holding at most two chunks in memory. The
// records/sec metric is directly comparable to BenchmarkReplayThroughput's.
func BenchmarkStreamReplayThroughput(b *testing.B) {
	cfg := workloads.DefaultYCSB()
	cfg.Ops = 100_000
	img, err := workloads.YCSB(cfg)
	if err != nil {
		b.Fatal(err)
	}
	records := len(img.Records)
	var buf bytes.Buffer
	if err := trace.EncodeV2(&buf, img, trace.StreamOptions{}); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, err := trace.OpenStream(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		f := core.NewDefault()
		_, rep, err := f.LaunchStream(src)
		if err != nil {
			b.Fatal(err)
		}
		if err := rep.Run(); err != nil {
			b.Fatal(err)
		}
		src.Close()
	}
	b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/sec")
}
