package kindle_test

import (
	"testing"

	"kindle/internal/core"
	"kindle/internal/workloads"
)

// BenchmarkReplayThroughput is the headline simulator-speed benchmark: how
// many trace records per second the full access path (TLB → page table →
// caches → memory, with the gemOS kernel ticking) replays on the host. The
// custom records/sec metric is the number to compare across PRs; see
// `make bench`.
func BenchmarkReplayThroughput(b *testing.B) {
	cfg := workloads.DefaultYCSB()
	cfg.Ops = 100_000
	img, err := workloads.YCSB(cfg)
	if err != nil {
		b.Fatal(err)
	}
	records := len(img.Records)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := core.NewDefault()
		_, rep, err := f.LaunchInit(img)
		if err != nil {
			b.Fatal(err)
		}
		if err := rep.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/sec")
}
